// Tests for the set-flooding gossip algorithm — the positive half of the
// simple-broadcast rows of Tables 1 and 2.

#include "core/gossip.hpp"

#include <gtest/gtest.h>

#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

std::vector<SetGossipAgent> make_agents(const std::vector<std::int64_t>& in) {
  std::vector<SetGossipAgent> agents;
  for (std::int64_t v : in) agents.emplace_back(v);
  return agents;
}

TEST(Gossip, StabilizesWithinDiameterRounds) {
  const Digraph g = directed_ring(7);
  const int d = diameter(g);
  const std::vector<std::int64_t> inputs{5, 1, 4, 1, 5, 9, 2};
  Executor<SetGossipAgent> exec(std::make_shared<StaticSchedule>(g),
                                make_agents(inputs),
                                CommModel::kSimpleBroadcast);
  exec.run(d);
  const std::set<std::int64_t> support(inputs.begin(), inputs.end());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(exec.agent(v).known(), support) << v;
  }
}

TEST(Gossip, NotDoneBeforeDiameter) {
  // On a directed ring, information travels one hop per round: after
  // diameter-1 rounds the far vertex is still missing a value.
  const Digraph g = directed_ring(6);
  std::vector<std::int64_t> inputs{100, 0, 0, 0, 0, 0};
  Executor<SetGossipAgent> exec(std::make_shared<StaticSchedule>(g),
                                make_agents(inputs),
                                CommModel::kSimpleBroadcast);
  exec.run(diameter(g) - 1);
  // Vertex 5 is at distance 5 from vertex 0.
  EXPECT_EQ(exec.agent(5).known().count(100), 0u);
  exec.step();
  EXPECT_EQ(exec.agent(5).known().count(100), 1u);
}

TEST(Gossip, ComputesSetBasedFunctions) {
  const Digraph g = random_strongly_connected(8, 5, 13);
  const std::vector<std::int64_t> inputs{3, 3, 7, -2, 7, 3, 0, -2};
  Executor<SetGossipAgent> exec(std::make_shared<StaticSchedule>(g),
                                make_agents(inputs),
                                CommModel::kSimpleBroadcast);
  exec.run(10);
  const SymmetricFunction min_f = min_function();
  const SymmetricFunction max_f = max_function();
  const SymmetricFunction supp = support_size();
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(exec.agent(v).output(min_f), Rational(-2));
    EXPECT_EQ(exec.agent(v).output(max_f), Rational(7));
    EXPECT_EQ(exec.agent(v).output(supp), Rational(4));
  }
}

TEST(Gossip, CannotSeeMultiplicities) {
  // Both executions stabilize to the same known-set: gossip is blind to
  // frequencies — the informal version of the impossibility half.
  const Digraph g3 = complete_graph(3);
  const Digraph g6 = complete_graph(6);
  Executor<SetGossipAgent> a(std::make_shared<StaticSchedule>(g3),
                             make_agents({1, 1, 2}),
                             CommModel::kSimpleBroadcast);
  Executor<SetGossipAgent> b(std::make_shared<StaticSchedule>(g6),
                             make_agents({1, 2, 2, 2, 2, 2}),
                             CommModel::kSimpleBroadcast);
  a.run(3);
  b.run(3);
  EXPECT_EQ(a.agent(0).known(), b.agent(0).known());
}

TEST(Gossip, WorksOnDynamicGraphsWithFiniteDynamicDiameter) {
  const Vertex n = 5;
  auto schedule = std::make_shared<TokenRingSchedule>(n);
  const int d = dynamic_diameter(*schedule, 10, 100);
  ASSERT_GT(d, 0);
  const std::vector<std::int64_t> inputs{9, 8, 7, 6, 5};
  Executor<SetGossipAgent> exec(schedule, make_agents(inputs),
                                CommModel::kSimpleBroadcast);
  exec.run(d);
  const std::set<std::int64_t> support(inputs.begin(), inputs.end());
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(exec.agent(v).known(), support) << v;
  }
}

TEST(Gossip, ToleratesAsynchronousStarts) {
  auto inner = std::make_shared<StaticSchedule>(complete_graph(4));
  auto schedule =
      std::make_shared<AsyncStartSchedule>(inner, std::vector<int>{1, 3, 5, 2});
  Executor<SetGossipAgent> exec(schedule, make_agents({1, 2, 3, 4}),
                                CommModel::kSimpleBroadcast);
  exec.run(8);  // everyone started by round 5; one more round to flood
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(exec.agent(v).known(),
              (std::set<std::int64_t>{1, 2, 3, 4}));
  }
}

TEST(Gossip, SelfStabilizesFromCorruptedKnownSets) {
  // Gossip is monotone, so corruption never disappears — but corrupting
  // with a *subset* (losing information) is always repaired. This matches
  // the flooding algorithm's tolerance: it recovers the support of whatever
  // the states claim, and agents' own inputs are re-seeded by construction.
  const Digraph g = bidirectional_ring(5);
  const std::vector<std::int64_t> inputs{1, 2, 3, 4, 5};
  Executor<SetGossipAgent> exec(std::make_shared<StaticSchedule>(g),
                                make_agents(inputs),
                                CommModel::kSimpleBroadcast);
  exec.run(2);
  // "Crash" agent 0 back to its initial state.
  exec.agents()[0] = SetGossipAgent(1);
  exec.run(diameter(g));
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(exec.agent(v).known(),
              (std::set<std::int64_t>{1, 2, 3, 4, 5}));
  }
}

TEST(Gossip, WorksUnderEveryCommunicationModel) {
  // Gossip ignores outdegree and ports, so it runs unchanged in all four
  // models — the "any model" claim of the set-based row.
  const std::vector<std::int64_t> inputs{4, 4, 2, 1};
  for (CommModel model :
       {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
        CommModel::kSymmetricBroadcast, CommModel::kOutputPortAware}) {
    Digraph g = bidirectional_ring(4);
    if (model == CommModel::kOutputPortAware) g.assign_output_ports();
    Executor<SetGossipAgent> exec(std::make_shared<StaticSchedule>(g),
                                  make_agents(inputs), model);
    exec.run(4);
    for (Vertex v = 0; v < 4; ++v) {
      EXPECT_EQ(exec.agent(v).known(), (std::set<std::int64_t>{1, 2, 4}))
          << to_string(model);
    }
  }
}

}  // namespace
}  // namespace anonet
