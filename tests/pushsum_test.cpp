// Tests for Push-Sum (core/pushsum.hpp): Theorem 5.2 convergence, mass
// conservation, Algorithm 1 frequencies, Corollary 5.3 rounding, the
// Section 5.5 leader variant, and asynchronous starts.

#include "core/pushsum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

TEST(PushSum, ComputesQuotSumOnStaticGraph) {
  // quot-sum = Σv / Σw = (1+2+3+4) / (1+1+2+4) = 10/8.
  const std::vector<double> values{1, 2, 3, 4};
  const std::vector<double> weights{1, 1, 2, 4};
  std::vector<PushSumAgent> agents;
  for (std::size_t i = 0; i < values.size(); ++i) {
    agents.emplace_back(values[i], weights[i]);
  }
  Executor<PushSumAgent> exec(
      std::make_shared<StaticSchedule>(random_strongly_connected(4, 4, 3)),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(200);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_NEAR(exec.agent(v).output(), 10.0 / 8.0, 1e-9) << v;
  }
}

TEST(PushSum, MassConservation) {
  // Column-stochastic updates preserve Σy and Σz exactly (up to float
  // roundoff) every single round.
  std::vector<PushSumAgent> agents;
  agents.emplace_back(5.0, 1.0);
  agents.emplace_back(-3.0, 1.0);
  agents.emplace_back(2.5, 1.0);
  agents.emplace_back(0.0, 1.0);
  agents.emplace_back(1.5, 1.0);
  Executor<PushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 77),
      std::move(agents), CommModel::kOutdegreeAware);
  for (int round = 0; round < 50; ++round) {
    exec.step();
    double y_total = 0.0, z_total = 0.0;
    for (Vertex v = 0; v < 5; ++v) {
      y_total += exec.agent(v).y();
      z_total += exec.agent(v).z();
    }
    EXPECT_NEAR(y_total, 6.0, 1e-9) << round;
    EXPECT_NEAR(z_total, 5.0, 1e-9) << round;
  }
}

TEST(PushSum, ConvergesOnDynamicGraphs) {
  // Average = quot-sum with unit weights, on a fully dynamic schedule.
  const std::vector<double> values{10, 20, 30, 40, 50, 60};
  std::vector<PushSumAgent> agents;
  for (double v : values) agents.emplace_back(v, 1.0);
  Executor<PushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(6, 2, 123),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(300);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_NEAR(exec.agent(v).output(), 35.0, 1e-6);
  }
}

TEST(PushSum, ErrorShrinksGeometrically) {
  // Theorem 5.2: within ε after O(n^{2D} D log 1/ε) rounds — on a fixed
  // network the error must decay (at least) geometrically in the round
  // number. Check monotone envelope over windows.
  std::vector<PushSumAgent> agents;
  for (int i = 0; i < 5; ++i) agents.emplace_back(i == 0 ? 1.0 : 0.0, 1.0);
  Executor<PushSumAgent> exec(
      std::make_shared<StaticSchedule>(bidirectional_ring(5)),
      std::move(agents), CommModel::kOutdegreeAware);
  double previous_error = 1.0;
  int improvements = 0;
  double final_error = 1.0;
  for (int window = 0; window < 10; ++window) {
    exec.run(10);
    double error = 0.0;
    for (Vertex v = 0; v < 5; ++v) {
      error = std::max(error, std::abs(exec.agent(v).output() - 0.2));
    }
    // Count halvings until the float noise floor.
    if (error < previous_error / 2.0 && error > 1e-13) ++improvements;
    previous_error = error;
    final_error = error;
  }
  EXPECT_GE(improvements, 3);  // decay saturates at double precision fast
  EXPECT_LT(final_error, 1e-9);
}

TEST(PushSum, RequiresOutdegreeAwareness) {
  PushSumAgent agent(1.0, 1.0);
  EXPECT_THROW(static_cast<void>(agent.send(0, 0)),
               std::logic_error);  // model hid the degree
  EXPECT_THROW(PushSumAgent(1.0, 0.0), std::invalid_argument);
}

TEST(FrequencyPushSum, EstimatesConvergeToFrequencies) {
  const std::vector<std::int64_t> inputs{1, 1, 1, 2, 2, 7};
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(6, 3, 9),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(300);
  for (Vertex v = 0; v < 6; ++v) {
    const auto est = exec.agent(v).estimates();
    EXPECT_NEAR(est.at(1), 0.5, 1e-6);
    EXPECT_NEAR(est.at(2), 1.0 / 3.0, 1e-6);
    EXPECT_NEAR(est.at(7), 1.0 / 6.0, 1e-6);
  }
}

TEST(FrequencyPushSum, RoundedFrequencyLocksExactly) {
  // Corollary 5.3: with bound N, rounding stabilizes on the exact ν_v and
  // stays there.
  const std::vector<std::int64_t> inputs{4, 4, 9};
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<StaticSchedule>(random_strongly_connected(3, 2, 1)),
      std::move(agents), CommModel::kOutdegreeAware);
  const Frequency truth = Frequency::of(inputs);
  exec.run(150);
  for (int extra = 0; extra < 10; ++extra) {
    exec.step();
    for (Vertex v = 0; v < 3; ++v) {
      const auto rounded = exec.agent(v).rounded_frequency(5);
      ASSERT_TRUE(rounded.has_value()) << extra;
      EXPECT_EQ(*rounded, truth) << extra;
    }
  }
}

TEST(FrequencyPushSum, NormalizedEstimatesSumToOne) {
  const std::vector<std::int64_t> inputs{1, 2, 3, 4};
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<StaticSchedule>(random_strongly_connected(4, 3, 2)),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(10);  // far from convergence: normalization still applies
  for (Vertex v = 0; v < 4; ++v) {
    double total = 0.0;
    for (const auto& [value, x] : exec.agent(v).normalized_estimates()) {
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(FrequencyPushSum, ToleratesAsynchronousStarts) {
  const std::vector<std::int64_t> inputs{5, 5, 8, 8};
  auto inner = std::make_shared<RandomStronglyConnectedSchedule>(4, 3, 33);
  auto schedule = std::make_shared<AsyncStartSchedule>(
      inner, std::vector<int>{1, 4, 2, 7});
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(schedule, std::move(agents),
                                       CommModel::kOutdegreeAware);
  exec.run(400);
  for (Vertex v = 0; v < 4; ++v) {
    const auto est = exec.agent(v).estimates();
    EXPECT_NEAR(est.at(5), 0.5, 1e-6) << v;
    EXPECT_NEAR(est.at(8), 0.5, 1e-6) << v;
  }
}

TEST(FrequencyPushSum, LeaderVariantRecoversMultiplicities) {
  // Section 5.5 with ℓ = 2 leaders: ℓ·x[ω] -> multiplicity of ω.
  const std::vector<std::int64_t> inputs{3, 3, 3, 9, 9};
  const std::vector<bool> leaders{true, false, true, false, false};
  std::vector<FrequencyPushSumAgent> agents;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    agents.emplace_back(inputs[i], leaders[i]);
  }
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 21),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(400);
  for (Vertex v = 0; v < 5; ++v) {
    const auto mult = exec.agent(v).multiplicity_estimates(2);
    EXPECT_NEAR(mult.at(3), 3.0, 1e-6) << v;
    EXPECT_NEAR(mult.at(9), 2.0, 1e-6) << v;
  }
}

TEST(FrequencyPushSum, LeaderVariantHasTransientInfinities) {
  // With z = 0 at non-leaders, x may be ∞ for finitely many rounds (the
  // paper notes this explicitly) — and must become finite.
  std::vector<FrequencyPushSumAgent> agents;
  agents.emplace_back(1, true);
  agents.emplace_back(2, false);
  agents.emplace_back(3, false);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<StaticSchedule>(directed_ring(3)), std::move(agents),
      CommModel::kOutdegreeAware);
  exec.step();
  bool saw_infinity = false;
  for (Vertex v = 0; v < 3; ++v) {
    for (const auto& [value, x] : exec.agent(v).estimates()) {
      if (std::isinf(x)) saw_infinity = true;
    }
  }
  EXPECT_TRUE(saw_infinity);
  exec.run(300);
  for (Vertex v = 0; v < 3; ++v) {
    for (const auto& [value, x] : exec.agent(v).estimates()) {
      EXPECT_TRUE(std::isfinite(x));
    }
  }
}

TEST(FrequencyPushSum, ConservativeJoiningIsExact) {
  // Regression: on this directed graph an agent keeps hearing *from* an
  // unknowing agent for several rounds. Algorithm 1's receiver-side
  // defaults (lines 9-10) inflate Σz here (the limit would be 1/5.83); the
  // conservative joining rule keeps it exactly n.
  Digraph g(5);
  g.ensure_self_loops();
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  g.add_edge(4, 1);
  g.add_edge(1, 2);
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : {1, 0, 0, 0, 0}) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(std::make_shared<StaticSchedule>(g),
                                       std::move(agents),
                                       CommModel::kOutdegreeAware);
  exec.run(500);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_NEAR(exec.agent(v).estimates().at(1), 0.2, 1e-9) << v;
  }
}

TEST(FrequencyPushSum, PerValueMassIsConservedOncePresentEverywhere) {
  // After every agent knows every value, Σy[ω] = multiplicity(ω) and
  // Σz[ω] = n exactly, round after round.
  const std::vector<std::int64_t> inputs{2, 2, 5, 5, 5};
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 71),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(20);  // long past full dissemination
  for (int round = 0; round < 30; ++round) {
    exec.step();
    std::map<std::int64_t, double> y_total, z_total;
    for (Vertex v = 0; v < 5; ++v) {
      // Inspect raw state via estimates plus mass identities: recompute
      // from a fresh send (outdegree 1 keeps values unscaled).
      const auto message = exec.agent(v).send(1, 0);
      for (std::size_t i = 0; i < message.keys.size(); ++i) {
        y_total[message.keys[i]] += message.ys[i];
        z_total[message.keys[i]] += message.zs[i];
      }
    }
    EXPECT_NEAR(y_total[2], 2.0, 1e-9) << round;
    EXPECT_NEAR(y_total[5], 3.0, 1e-9) << round;
    EXPECT_NEAR(z_total[2], 5.0, 1e-9) << round;
    EXPECT_NEAR(z_total[5], 5.0, 1e-9) << round;
  }
}

TEST(FrequencyPushSum, WorksOnSparseTokenRing) {
  // A schedule whose individual rounds are maximally disconnected but whose
  // dynamic diameter is finite — the weakest connectivity Theorem 5.2 needs.
  auto schedule = std::make_shared<TokenRingSchedule>(4);
  ASSERT_GT(dynamic_diameter(*schedule, 8, 64), 0);
  const std::vector<std::int64_t> inputs{1, 1, 2, 2};
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(schedule, std::move(agents),
                                       CommModel::kOutdegreeAware);
  exec.run(2000);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_NEAR(exec.agent(v).estimates().at(1), 0.5, 1e-3) << v;
  }
}

TEST(PushSum, IsNotSelfStabilizing) {
  // Section 5 / Section 6: Push-Sum's correctness lives in its
  // initialization (Σy, Σz are conserved, never re-established). Corrupting
  // the state mid-run permanently shifts the limit — the algorithm
  // *tolerates asynchronous starts but is not self-stabilizing*, exactly as
  // the paper states. This is a negative demonstration, not a bug.
  std::vector<PushSumAgent> agents;
  for (int i = 0; i < 4; ++i) agents.emplace_back(i == 0 ? 1.0 : 0.0, 1.0);
  Executor<PushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(4, 3, 55),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(30);
  // Adversarial state corruption: double one agent's y mass.
  exec.agents()[2] = PushSumAgent(1.0, 1.0);
  exec.run(300);
  const double truth = 0.25;
  double error = 0.0;
  for (Vertex v = 0; v < 4; ++v) {
    error = std::max(error, std::abs(exec.agent(v).output() - truth));
  }
  EXPECT_GT(error, 0.05);  // converged, but to the wrong value
  // All agents agree on that wrong value (consensus without correctness).
  double spread_value = 0.0;
  for (Vertex v = 0; v < 4; ++v) {
    spread_value = std::max(
        spread_value, std::abs(exec.agent(v).output() - exec.agent(0).output()));
  }
  EXPECT_LT(spread_value, 1e-9);
}

}  // namespace
}  // namespace anonet
