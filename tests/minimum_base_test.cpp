// Tests for minimum-base computation (fibration/minimum_base.hpp), including
// the Section 4.2 fibre equations on the resulting bases.

#include "fibration/minimum_base.hpp"

#include <gtest/gtest.h>

#include "fibration/fibration.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"

namespace anonet {
namespace {

TEST(MinimumBase, UniformRingCollapsesToOneVertex) {
  const Digraph g = bidirectional_ring(8);
  const MinimumBase mb = minimum_base(g, std::vector<int>(8, 0));
  EXPECT_EQ(mb.base.vertex_count(), 1);
  // One self-loop from the loop, plus two ring in-edges folded to loops.
  EXPECT_EQ(mb.base.edge_count(), 3);
  EXPECT_EQ(mb.fibre_sizes(), (std::vector<int>{8}));
}

TEST(MinimumBase, ProjectionIsAFibration) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph base = random_strongly_connected(4, 3, seed);
    const LiftedGraph lift = random_lift(base, {2, 3, 1, 2}, seed);
    const std::vector<int> values(
        static_cast<std::size_t>(lift.graph.vertex_count()), 0);
    const MinimumBase mb = minimum_base(lift.graph, values);
    EXPECT_TRUE(is_fibration(lift.graph, values, mb.base, mb.values,
                             mb.projection))
        << seed;
  }
}

TEST(MinimumBase, BaseIsFibrationPrime) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph g = random_strongly_connected(7, 5, seed + 40);
    const std::vector<int> values{0, 1, 0, 1, 0, 1, 0};
    const MinimumBase mb = minimum_base(g, values);
    EXPECT_TRUE(is_fibration_prime(mb.base, mb.values)) << seed;
  }
}

TEST(MinimumBase, MinimumBaseOfLiftMatchesMinimumBaseOfBase) {
  // min_base(lift(B)) ≅ min_base(B): collapsing a lift recovers the same
  // prime base, the uniqueness half of Section 3.2.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Digraph base = random_strongly_connected(4, 4, seed + 11);
    const std::vector<int> base_values{0, 1, 2, 0};
    const LiftedGraph lift = random_lift(base, {2, 2, 3, 1}, seed);
    const std::vector<int> lift_values =
        lift_along(lift.projection, base_values);

    const MinimumBase from_lift = minimum_base(lift.graph, lift_values);
    const MinimumBase from_base = minimum_base(base, base_values);
    EXPECT_TRUE(find_isomorphism(from_lift.base, from_lift.values,
                                 from_base.base, from_base.values)
                    .has_value())
        << seed;
  }
}

TEST(MinimumBase, FibreEquationsHold) {
  // eq. (1): b_i |fibre_i| = Σ_j d_{i,j} |fibre_j| with b_i the common
  // outdegree of fibre i in G.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph base = random_strongly_connected(3, 4, seed + 77);
    const LiftedGraph lift = random_lift(base, {2, 4, 3}, seed);
    const Digraph& g = lift.graph;
    const std::vector<int> labels =
        combine_labels(std::vector<int>(static_cast<std::size_t>(
                           g.vertex_count()), 0),
                       outdegree_labels(g));
    const MinimumBase mb = minimum_base(g, labels);
    const std::vector<int> sizes = mb.fibre_sizes();
    // Recover b_i from any member of the fibre.
    std::vector<int> b(static_cast<std::size_t>(mb.base.vertex_count()), -1);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const Vertex c = mb.projection[static_cast<std::size_t>(v)];
      const int d = g.outdegree(v);
      if (b[static_cast<std::size_t>(c)] == -1) {
        b[static_cast<std::size_t>(c)] = d;
      }
      EXPECT_EQ(b[static_cast<std::size_t>(c)], d)
          << "outdegree must be constant on fibres";
    }
    for (Vertex i = 0; i < mb.base.vertex_count(); ++i) {
      int rhs = 0;
      for (Vertex j = 0; j < mb.base.vertex_count(); ++j) {
        rhs += mb.base.edge_multiplicity(i, j) *
               sizes[static_cast<std::size_t>(j)];
      }
      EXPECT_EQ(b[static_cast<std::size_t>(i)] *
                    sizes[static_cast<std::size_t>(i)],
                rhs)
          << seed << " i=" << i;
    }
  }
}

TEST(MinimumBase, OutdegreeLabels) {
  const Digraph g = directed_ring(4);
  EXPECT_EQ(outdegree_labels(g), (std::vector<int>{2, 2, 2, 2}));
}

TEST(MinimumBase, DistinctValuesMakePrimeGraphs) {
  const Digraph g = bidirectional_ring(5);
  EXPECT_TRUE(is_fibration_prime(g, {1, 2, 3, 4, 5}));
  EXPECT_FALSE(is_fibration_prime(g, std::vector<int>(5, 0)));
}

TEST(MinimumBase, ColorsPreservedInBase) {
  Digraph g = bidirectional_ring(6);
  // Color the clockwise edges 1, counter-clockwise 2 (a port-like scheme
  // constant along the collapse).
  Digraph colored(6);
  for (Vertex v = 0; v < 6; ++v) {
    colored.add_edge(v, v, 3);
    colored.add_edge(v, (v + 1) % 6, 1);
    colored.add_edge((v + 1) % 6, v, 2);
  }
  const MinimumBase mb = minimum_base(colored, std::vector<int>(6, 0));
  EXPECT_EQ(mb.base.vertex_count(), 1);
  std::vector<int> colors;
  for (const Edge& e : mb.base.edges()) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  EXPECT_EQ(colors, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace anonet
