// Tests for the campaign subsystem: grid expansion, capability filtering,
// the JSONL metrics round-trip, sharding/resume determinism, and the
// Table 1 aggregation. Suites are named so scripts/check.sh's TSan filter
// picks up the concurrency-sensitive ones (CampaignDeterminism,
// CampaignParallel) while the heavier end-to-end checks stay in Campaign.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cost_model.hpp"
#include "campaign/metrics.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "support/jsonl.hpp"

namespace anonet::campaign {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "anonet_campaign_" + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A one-cell grid around an explicit Spec block.
Grid single_spec_grid(Spec spec) {
  Grid grid;
  grid.add(std::move(spec));
  return grid;
}

Spec derived_spec() {
  Spec spec;
  spec.suite = "probe";
  spec.knowledges = {Knowledge::kNone};
  spec.functions = {FunctionKind::kAverage};
  spec.schedules = {ScheduleKind::kRandomStronglyConnected};
  spec.input_source = InputSource::kDerived;
  spec.sizes = {4};
  spec.seeds = {1};
  spec.rounds = 50;
  return spec;
}

TEST(Campaign, ExpansionIsDeterministicWithStableIndices) {
  const std::vector<Cell> a = Grid::preset("smoke").expand();
  const std::vector<Cell> b = Grid::preset("smoke").expand();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  std::set<std::string> keys;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_EQ(a[i].key(), b[i].key());
    EXPECT_EQ(a[i].inputs, b[i].inputs);
    EXPECT_TRUE(keys.insert(a[i].key()).second) << a[i].key();
  }
}

TEST(Campaign, PresetNamesAllExpand) {
  for (const std::string& name : Grid::preset_names()) {
    EXPECT_FALSE(Grid::preset(name).expand().empty()) << name;
  }
  EXPECT_THROW(Grid::preset("nope"), std::invalid_argument);
}

TEST(Campaign, ExpandRejectsEmptyAxes) {
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kAuto};
  spec.sizes.clear();
  EXPECT_THROW(single_spec_grid(spec).expand(), std::invalid_argument);
  Spec no_seeds = derived_spec();
  no_seeds.agents = {AgentKind::kAuto};
  no_seeds.seeds.clear();
  EXPECT_THROW(single_spec_grid(no_seeds).expand(), std::invalid_argument);
}

TEST(Campaign, SlugParseRoundTrip) {
  for (AgentKind kind : {AgentKind::kAuto, AgentKind::kSetGossip,
                         AgentKind::kFrequencyPushSum, AgentKind::kMetropolis}) {
    EXPECT_EQ(parse_agent(slug(kind)), kind);
  }
  for (ScheduleKind kind :
       {ScheduleKind::kStaticPanel, ScheduleKind::kRandomStronglyConnected,
        ScheduleKind::kRandomSymmetric, ScheduleKind::kRandomMatching,
        ScheduleKind::kTokenRing, ScheduleKind::kSpooner,
        ScheduleKind::kUnionRing, ScheduleKind::kGrowingGap}) {
    EXPECT_EQ(parse_schedule(slug(kind)), kind);
  }
  for (FunctionKind kind :
       {FunctionKind::kMax, FunctionKind::kAverage, FunctionKind::kSum}) {
    EXPECT_EQ(parse_function(slug(kind)), kind);
  }
  for (CommModel model :
       {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
        CommModel::kSymmetricBroadcast, CommModel::kOutputPortAware}) {
    EXPECT_EQ(parse_model(slug(model)), model);
  }
  for (Knowledge knowledge : {Knowledge::kNone, Knowledge::kUpperBound,
                              Knowledge::kExactSize, Knowledge::kLeaders}) {
    EXPECT_EQ(parse_knowledge(slug(knowledge)), knowledge);
  }
  EXPECT_THROW((void)parse_agent("bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_model("bogus"), std::invalid_argument);
}

TEST(Campaign, ForbiddenPairingsBecomeSkippedRows) {
  // Push-Sum under simple broadcast: the canonical Table 1 forbidden cell.
  Spec pushsum = derived_spec();
  pushsum.agents = {AgentKind::kFrequencyPushSum};
  pushsum.models = {CommModel::kSimpleBroadcast};
  std::vector<Cell> cells = single_spec_grid(pushsum).expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].admissible);
  EXPECT_NE(cells[0].skip_reason.find("outdegree"), std::string::npos)
      << cells[0].skip_reason;

  // Metropolis (kSymmetricOnly) on an asymmetric schedule.
  Spec metro = derived_spec();
  metro.agents = {AgentKind::kMetropolis};
  metro.models = {CommModel::kOutdegreeAware};
  metro.schedules = {ScheduleKind::kTokenRing};
  cells = single_spec_grid(metro).expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].admissible);
  EXPECT_NE(cells[0].skip_reason.find("kSymmetricOnly"), std::string::npos)
      << cells[0].skip_reason;

  // Symmetric broadcast on an asymmetric schedule (model, not agent).
  Spec sym = derived_spec();
  sym.agents = {AgentKind::kSetGossip};
  sym.functions = {FunctionKind::kMax};
  sym.models = {CommModel::kSymmetricBroadcast};
  sym.schedules = {ScheduleKind::kTokenRing};
  cells = single_spec_grid(sym).expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].admissible);

  // Output-port awareness on a dynamic schedule.
  Spec ports = derived_spec();
  ports.agents = {AgentKind::kAuto};
  ports.models = {CommModel::kOutputPortAware};
  cells = single_spec_grid(ports).expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].admissible);
  EXPECT_NE(cells[0].skip_reason.find("static"), std::string::npos)
      << cells[0].skip_reason;

  // Function-class pinning: gossip computes set-based functions only.
  Spec gossip = derived_spec();
  gossip.agents = {AgentKind::kSetGossip};
  gossip.models = {CommModel::kSimpleBroadcast};
  gossip.functions = {FunctionKind::kSum};
  cells = single_spec_grid(gossip).expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].admissible);
}

TEST(Campaign, TablesGridSkipsExactlyTheOpenCells) {
  // Table 2's two "?" pairings x 3 functions x 3 input sets = 18 open-skips.
  const std::vector<Cell> cells = Grid::preset("tables").expand();
  int open_skips = 0;
  int other_skips = 0;
  for (const Cell& cell : cells) {
    if (cell.admissible) continue;
    if (cell.skip_reason.find("open in the paper") != std::string::npos) {
      ++open_skips;
      EXPECT_EQ(cell.suite, "table2");
      EXPECT_EQ(cell.model, CommModel::kOutdegreeAware);
      EXPECT_TRUE(cell.knowledge == Knowledge::kNone ||
                  cell.knowledge == Knowledge::kLeaders);
    } else {
      ++other_skips;
    }
  }
  EXPECT_EQ(open_skips, 18);
  EXPECT_EQ(other_skips, 0);
}

TEST(Campaign, RunCellRecordsSkipsWithoutRunning) {
  Cell cell;
  cell.index = 7;
  cell.suite = "probe";
  cell.agent = AgentKind::kFrequencyPushSum;
  cell.model = CommModel::kSimpleBroadcast;
  cell.function = FunctionKind::kAverage;
  cell.inputs = {1, 2, 3, 4};
  cell.admissible = false;
  cell.skip_reason = "diagnosis text";
  const CellRecord record = Runner::run_cell(cell);
  EXPECT_EQ(record.verdict, "skipped");
  EXPECT_EQ(record.reason, "diagnosis text");
  EXPECT_EQ(record.mechanism, "(not run)");
  EXPECT_EQ(record.cell, 7);
  EXPECT_EQ(record.key, cell.key());
  EXPECT_EQ(record.rounds, 0);
}

TEST(Campaign, RunCellCapturesExceptionsAsFailedRecords) {
  // SpoonerSchedule requires n >= 3; an admissible-looking cell with two
  // agents makes the schedule constructor throw inside the runner.
  Cell cell;
  cell.index = 0;
  cell.suite = "probe";
  cell.agent = AgentKind::kSetGossip;
  cell.model = CommModel::kSimpleBroadcast;
  cell.function = FunctionKind::kMax;
  cell.schedule = ScheduleKind::kSpooner;
  cell.inputs = {1, 2};
  cell.rounds = 10;
  const CellRecord record = Runner::run_cell(cell);
  EXPECT_EQ(record.verdict, "failed");
  EXPECT_FALSE(record.reason.empty());
  EXPECT_FALSE(record.success);
}

TEST(Campaign, RunnerValidatesShardOptions) {
  RunnerOptions bad_shards;
  bad_shards.shards = 0;
  EXPECT_THROW(Runner{bad_shards}, std::invalid_argument);
  RunnerOptions bad_index;
  bad_index.shards = 2;
  bad_index.shard_index = 2;
  EXPECT_THROW(Runner{bad_index}, std::invalid_argument);
}

TEST(Campaign, JsonEscapingAndNumbers) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("nul\x01")), "nul\\u0001");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::nan("")), "\"nan\"");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "\"inf\"");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
}

TEST(Campaign, RecordJsonRoundTripsThroughParseLine) {
  CellRecord record;
  record.cell = 42;
  record.key = "suite/agent/model/none/max/sched/n6/v1/s17";
  record.suite = "table2";
  record.agent = "auto";
  record.model = "outdegree-aware";
  record.knowledge = "leaders";
  record.function = "sum";
  record.schedule = "random-strong";
  record.variant = 2;
  record.n = 6;
  record.seed = 19;
  record.verdict = "failed";
  record.reason = "quote \" backslash \\ newline \n control \x02 done";
  record.success = true;
  record.exact = true;
  record.stabilization_round = 13;
  record.error = 0.125;
  record.rounds = 400;
  record.messages = 12345;
  record.payload = 67890;
  record.mechanism = "per-value Push-Sum (Algorithm 1)";

  const std::string line = MetricsSink::to_json(record, false);
  const auto parsed = MetricsSink::parse_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell, record.cell);
  EXPECT_EQ(parsed->key, record.key);
  EXPECT_EQ(parsed->suite, record.suite);
  EXPECT_EQ(parsed->knowledge, record.knowledge);
  EXPECT_EQ(parsed->reason, record.reason);
  EXPECT_EQ(parsed->variant, record.variant);
  EXPECT_EQ(parsed->n, record.n);
  EXPECT_EQ(parsed->seed, record.seed);
  EXPECT_EQ(parsed->verdict, record.verdict);
  EXPECT_TRUE(parsed->success);
  EXPECT_TRUE(parsed->exact);
  EXPECT_EQ(parsed->stabilization_round, record.stabilization_round);
  EXPECT_EQ(parsed->error, record.error);
  EXPECT_EQ(parsed->rounds, record.rounds);
  EXPECT_EQ(parsed->messages, record.messages);
  EXPECT_EQ(parsed->payload, record.payload);
  EXPECT_EQ(parsed->mechanism, record.mechanism);
  // Re-rendering the parsed record reproduces the exact bytes.
  EXPECT_EQ(MetricsSink::to_json(*parsed, false), line);

  // The default NaN error survives as NaN (spelled "nan" on the wire).
  CellRecord nan_record = record;
  nan_record.error = std::numeric_limits<double>::quiet_NaN();
  const auto nan_parsed =
      MetricsSink::parse_line(MetricsSink::to_json(nan_record, false));
  ASSERT_TRUE(nan_parsed.has_value());
  EXPECT_TRUE(std::isnan(nan_parsed->error));
}

TEST(Campaign, ParseLineRejectsTruncatedLines) {
  CellRecord record;
  record.cell = 3;
  record.key = "k";
  record.verdict = "ok";
  record.mechanism = "text with \"quotes\"";
  const std::string line = MetricsSink::to_json(record, false);
  EXPECT_TRUE(MetricsSink::parse_line(line).has_value());
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(MetricsSink::parse_line(line.substr(0, len)).has_value())
        << "accepted truncation at " << len;
  }
  EXPECT_FALSE(MetricsSink::parse_line("not json").has_value());
  EXPECT_FALSE(MetricsSink::parse_line("{}").has_value());  // missing fields
}

TEST(Campaign, SinkWritesReadableCanonicalFiles) {
  const std::string path = temp_path("sink.jsonl");
  CellRecord a;
  a.cell = 1;
  a.key = "k1";
  a.verdict = "ok";
  CellRecord b;
  b.cell = 0;
  b.key = "k0";
  b.verdict = "skipped";
  {
    MetricsSink sink(path, false, /*append=*/false);
    sink.append(a);
    sink.append(b);
  }
  std::vector<CellRecord> records = MetricsSink::read_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "k1");  // file order = append order

  // Canonical rewrite sorts by cell and drops duplicate cells (first wins).
  CellRecord dup = a;
  dup.verdict = "failed";
  records.push_back(dup);
  MetricsSink::write_canonical(path, records, false);
  records = MetricsSink::read_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "k0");
  EXPECT_EQ(records[1].key, "k1");
  EXPECT_EQ(records[1].verdict, "ok");

  EXPECT_TRUE(MetricsSink::read_file(temp_path("missing.jsonl")).empty());
  std::remove(path.c_str());
}

TEST(Campaign, Table1RunMatchesThePaper) {
  // The full static table: every admissible (model, knowledge, function,
  // panel) cell measured and folded back into the paper's verdict grid.
  const Runner runner{RunnerOptions{}};
  const std::vector<CellRecord> records =
      runner.run(Grid::preset("table1"));
  for (const CellRecord& record : records) {
    EXPECT_NE(record.verdict, "failed") << record.key << ": " << record.reason;
  }
  const TableComparison table = compare_table(records, "table1");
  EXPECT_TRUE(table.all_match) << render_table(table);

  // Sabotaging the measurements must flip the verdict.
  std::vector<CellRecord> broken = records;
  for (CellRecord& record : broken) {
    if (record.function == "sum") {
      record.exact = false;
      record.success = false;
    }
  }
  EXPECT_FALSE(compare_table(broken, "table1").all_match);
  EXPECT_NE(render_table(compare_table(broken, "table1")).find("DIFFERS"),
            std::string::npos);
}

TEST(Campaign, CompareTableRequiresOpenCellsSkipped) {
  // Synthesized table2 records shaped exactly like the paper's grid.
  const std::vector<Knowledge> rows = {Knowledge::kNone, Knowledge::kUpperBound,
                                       Knowledge::kExactSize,
                                       Knowledge::kLeaders};
  const std::vector<CommModel> cols = {CommModel::kSimpleBroadcast,
                                       CommModel::kOutdegreeAware,
                                       CommModel::kSymmetricBroadcast};
  const std::vector<std::vector<std::string>> labels = {
      {"set-based", "?", "frequency-based"},
      {"set-based", "frequency-based", "frequency-based"},
      {"set-based", "multiset-based", "multiset-based"},
      {"set-based", "?", "multiset-based"},
  };
  std::vector<CellRecord> records;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      for (const char* function : {"max", "average", "sum"}) {
        CellRecord record;
        record.cell = static_cast<int>(records.size());
        record.key = "cell" + std::to_string(record.cell);
        record.suite = "table2";
        record.knowledge = std::string(slug(rows[r]));
        record.model = std::string(slug(cols[c]));
        record.function = function;
        const std::string& label = labels[r][c];
        if (label == "?") {
          record.verdict = "skipped";
        } else {
          record.verdict = "ok";
          const std::string f = function;
          record.exact = (label == "multiset-based") ||
                         (label == "frequency-based" && f != "sum") ||
                         (label == "set-based" && f == "max");
          record.success = record.exact;
        }
        records.push_back(std::move(record));
      }
    }
  }
  const TableComparison table = compare_table(records, "table2");
  EXPECT_TRUE(table.all_match) << render_table(table);

  // An open cell that was measured instead of skipped is a mismatch even if
  // the measurement is impressive.
  std::vector<CellRecord> measured_open = records;
  for (CellRecord& record : measured_open) {
    if (record.knowledge == "none" && record.model == "outdegree-aware") {
      record.verdict = "ok";
      record.exact = true;
      record.success = true;
    }
  }
  EXPECT_FALSE(compare_table(measured_open, "table2").all_match);

  // Asymptotic-only average is the starred frequency label.
  std::vector<CellRecord> starred = records;
  for (CellRecord& record : starred) {
    if (record.knowledge == "upper-bound" &&
        record.model == "outdegree-aware" && record.function == "average") {
      record.exact = false;
      record.success = true;
    }
  }
  const TableComparison star = compare_table(starred, "table2");
  EXPECT_EQ(star.measured[1][1], "frequency-based*");
  EXPECT_FALSE(star.all_match);

  EXPECT_THROW(compare_table(records, "table9"), std::invalid_argument);
}

TEST(CampaignDeterminism, ShardedRunsProduceIdenticalFiles) {
  const std::string single = temp_path("single.jsonl");
  const std::string sharded = temp_path("sharded.jsonl");
  const Grid grid = Grid::preset("smoke");

  RunnerOptions one;
  one.out_path = single;
  one.resume = false;
  const std::vector<CellRecord> records = Runner(one).run(grid);
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].cell, records[i].cell);
  }

  // Four shards in turn against one shared file: each appends its cells and
  // canonically rewrites, so the final file equals the single-shard bytes.
  std::remove(sharded.c_str());
  for (int shard = 0; shard < 4; ++shard) {
    RunnerOptions options;
    options.shards = 4;
    options.shard_index = shard;
    options.out_path = sharded;
    Runner(options).run(grid);
  }
  const std::string a = read_bytes(single);
  const std::string b = read_bytes(sharded);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(single.c_str());
  std::remove(sharded.c_str());
}

TEST(CampaignDeterminism, ResumeReusesFinishedCells) {
  const std::string path = temp_path("resume.jsonl");
  const Grid grid = Grid::preset("smoke");
  RunnerOptions options;
  options.out_path = path;
  Runner(options).run(grid);
  const std::string complete = read_bytes(path);

  // Tamper with one finished record: a resumed run must trust and keep it
  // (proof the cell was not recomputed), while recomputing the cells whose
  // lines we drop.
  std::vector<CellRecord> records = MetricsSink::read_file(path);
  ASSERT_GE(records.size(), 4u);
  const std::string tampered_key = records[1].key;
  records[1].mechanism = "sentinel: must survive resume";
  records.resize(records.size() / 2);  // "crash": lose the tail
  MetricsSink::write_canonical(path, std::move(records), false);

  const std::vector<CellRecord> resumed = Runner(options).run(grid);
  bool sentinel_seen = false;
  for (const CellRecord& record : resumed) {
    if (record.key == tampered_key) {
      sentinel_seen = record.mechanism == "sentinel: must survive resume";
    }
  }
  EXPECT_TRUE(sentinel_seen);

  // A half-written (truncated mid-line) file: the broken line is recomputed
  // and the final file converges back to the canonical bytes.
  std::string crashed = complete;
  crashed.resize(crashed.size() - complete.size() / 3);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << crashed;
  }
  Runner(options).run(grid);
  EXPECT_EQ(read_bytes(path), complete);
  std::remove(path.c_str());
}

TEST(CampaignParallel, ThreadedRunMatchesSerial) {
  const Grid grid = Grid::preset("smoke");
  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions threaded;
  threaded.threads = 4;
  // The work-stealing cost order must not leak into results either.
  RunnerOptions threaded_cost;
  threaded_cost.threads = 4;
  threaded_cost.shard_by = ShardBy::kCost;
  const std::vector<CellRecord> a = Runner(serial).run(grid);
  const std::vector<CellRecord> b = Runner(threaded).run(grid);
  const std::vector<CellRecord> c = Runner(threaded_cost).run(grid);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(MetricsSink::to_json(a[i], false),
              MetricsSink::to_json(b[i], false))
        << a[i].key;
    EXPECT_EQ(MetricsSink::to_json(a[i], false),
              MetricsSink::to_json(c[i], false))
        << a[i].key;
  }
}

TEST(Campaign, SinkIsDurablePerVerdictRecord) {
  // Remote-use contract (src/net/): an appended record is an acknowledged
  // cell and must be on disk the moment append() returns, so a worker
  // killed mid-stream (no close(), no destructor) never loses a cell its
  // coordinator already counted. Reading the file while the sink is still
  // open is exactly what a post-kill recovery would see — there is no
  // batching interval allowed to hold a record in the stream buffer, for
  // *any* verdict spelling (the old interval path only triggered for
  // verdict-bearing records and silently buffered the rest).
  const std::string path = temp_path("durable_sink.jsonl");
  MetricsSink sink(path, false, /*append=*/false);
  const char* verdicts[] = {"ok", "", "timeout", "expected_failure"};
  for (int i = 0; i < 4; ++i) {
    CellRecord record;
    record.cell = i;
    record.key = "cell-" + std::to_string(i);
    record.verdict = verdicts[i];
    sink.append(record);
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      if (!line.empty()) ++lines;
    }
    EXPECT_EQ(lines, static_cast<std::size_t>(i) + 1)
        << "record " << i << " (verdict '" << verdicts[i]
        << "') not flushed before the next cell starts";
  }
  // Resume against the mid-stream file: every acknowledged record is
  // parseable and reusable, and new appends extend rather than clobber.
  {
    MetricsSink resumed(path, false, /*append=*/true);
    CellRecord record;
    record.cell = 4;
    record.key = "cell-4";
    resumed.append(record);
  }
  const std::vector<CellRecord> records = MetricsSink::read_file(path);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().key, "cell-0");
  EXPECT_EQ(records.back().key, "cell-4");
  sink.close();
  std::remove(path.c_str());
}

TEST(CampaignCost, ShardBySlugsRoundTrip) {
  EXPECT_EQ(parse_shard_by(slug(ShardBy::kIndex)), ShardBy::kIndex);
  EXPECT_EQ(parse_shard_by(slug(ShardBy::kCost)), ShardBy::kCost);
  EXPECT_THROW((void)parse_shard_by("lpt"), std::invalid_argument);
}

TEST(CampaignCost, StaticEstimatesOrderMechanismsSensibly) {
  Cell skipped;
  skipped.inputs = {1, 2, 3, 4, 5, 6};
  skipped.admissible = false;
  Cell gossip = skipped;
  gossip.admissible = true;
  gossip.agent = AgentKind::kSetGossip;
  gossip.function = FunctionKind::kMax;
  Cell minbase = gossip;
  minbase.agent = AgentKind::kAuto;
  minbase.function = FunctionKind::kAverage;
  minbase.model = CommModel::kOutdegreeAware;
  Cell history = minbase;
  history.model = CommModel::kSymmetricBroadcast;
  history.knowledge = Knowledge::kNone;
  history.schedule = ScheduleKind::kRandomSymmetric;
  EXPECT_LT(CostModel::static_estimate(skipped),
            CostModel::static_estimate(gossip));
  EXPECT_LT(CostModel::static_estimate(gossip),
            CostModel::static_estimate(minbase));
  EXPECT_LT(CostModel::static_estimate(minbase),
            CostModel::static_estimate(history));
}

TEST(CampaignCost, MeasuredCostsOverrideStaticEstimates) {
  const std::string path = temp_path("timings.jsonl");
  Cell cell;
  cell.suite = "probe";
  cell.inputs = {1, 2, 3, 4};
  CellRecord record;
  record.cell = 0;
  record.key = cell.key();
  record.verdict = "ok";
  record.wall_ms = 123.5;
  {
    MetricsSink sink(path, /*include_timings=*/true, /*append=*/false);
    sink.append(record);
  }
  const CostModel model = CostModel::from_timings_file(path);
  EXPECT_EQ(model.measured_count(), 1u);
  EXPECT_DOUBLE_EQ(model.cost(cell), 123.5);
  Cell other = cell;
  other.seed = 99;  // different key: falls back to the static estimate
  EXPECT_DOUBLE_EQ(model.cost(other), CostModel::static_estimate(other));
  // Missing file: empty model, static estimates throughout.
  const CostModel cold =
      CostModel::from_timings_file(temp_path("no_such_timings.jsonl"));
  EXPECT_EQ(cold.measured_count(), 0u);
  EXPECT_DOUBLE_EQ(cold.cost(cell), CostModel::static_estimate(cell));
  std::remove(path.c_str());
}

TEST(CampaignCost, OrderIsACostDescendingPermutation) {
  const std::vector<Cell> cells = Grid::preset("smoke").expand();
  const CostModel model;
  const std::vector<std::size_t> order = cost_descending_order(cells, model);
  ASSERT_EQ(order.size(), cells.size());
  std::set<std::size_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), cells.size());  // a permutation
  for (std::size_t i = 1; i < order.size(); ++i) {
    const double prev = model.cost(cells[order[i - 1]]);
    const double cur = model.cost(cells[order[i]]);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(order[i - 1], order[i]);  // ties: index order
    }
  }
}

TEST(CampaignCost, LptBalancesASkewedGridWithinBound) {
  // A deliberately skewed load: costs 1..40 (max item well under the mean
  // shard load). LPT must land within the issue's max/mean <= 1.4 budget —
  // `index % 4` on the same costs is far outside it when the heavy cells
  // cluster. Measured costs are injected via the timings map so the test
  // controls the skew exactly.
  std::vector<Cell> cells(40);
  CostModel model;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].index = static_cast<int>(i);
    cells[i].suite = "skew";
    cells[i].seed = i + 1;
    cells[i].inputs = {1, 2, 3};
    model.set_measured(cells[i].key(), static_cast<double>(i + 1));
  }
  const int shards = 4;
  const std::vector<int> assignment =
      assign_shards_by_cost(cells, model, shards);
  ASSERT_EQ(assignment.size(), cells.size());
  std::vector<double> load(shards, 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_GE(assignment[i], 0);
    ASSERT_LT(assignment[i], shards);
    load[static_cast<std::size_t>(assignment[i])] += model.cost(cells[i]);
  }
  double total = 0.0;
  double max_load = 0.0;
  for (double l : load) {
    total += l;
    max_load = std::max(max_load, l);
  }
  const double mean = total / shards;
  EXPECT_LE(max_load / mean, 1.4) << "max " << max_load << " mean " << mean;

  // Determinism: a second identical call agrees shard by shard.
  EXPECT_EQ(assign_shards_by_cost(cells, model, shards), assignment);
  EXPECT_THROW((void)assign_shards_by_cost(cells, model, 0),
               std::invalid_argument);
}

TEST(CampaignCost, SmokeGridStaticSplitIsBalanced) {
  // The real static estimator on a real grid: the 4-way LPT split of the
  // smoke preset must stay within the same imbalance budget.
  const std::vector<Cell> cells = Grid::preset("smoke").expand();
  const CostModel model;
  const std::vector<int> assignment = assign_shards_by_cost(cells, model, 4);
  std::vector<double> load(4, 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    load[static_cast<std::size_t>(assignment[i])] += model.cost(cells[i]);
  }
  double total = 0.0;
  double max_load = 0.0;
  for (double l : load) {
    total += l;
    max_load = std::max(max_load, l);
  }
  EXPECT_LE(max_load / (total / 4.0), 1.4);
}

TEST(CampaignDeterminism, CostShardingProducesIdenticalCanonicalBytes) {
  // The shard-invariance guarantee extended to the cost policy: one shard
  // under kCost, four shards under kCost, and the index-sharded baseline
  // all converge to the same canonical bytes.
  const std::string base = temp_path("cost_base.jsonl");
  const std::string cost_single = temp_path("cost_single.jsonl");
  const std::string cost_sharded = temp_path("cost_sharded.jsonl");
  const Grid grid = Grid::preset("smoke");

  RunnerOptions index_one;
  index_one.out_path = base;
  index_one.resume = false;
  Runner(index_one).run(grid);

  RunnerOptions cost_one;
  cost_one.out_path = cost_single;
  cost_one.resume = false;
  cost_one.shard_by = ShardBy::kCost;
  Runner(cost_one).run(grid);

  std::remove(cost_sharded.c_str());
  for (int shard = 0; shard < 4; ++shard) {
    RunnerOptions options;
    options.shards = 4;
    options.shard_index = shard;
    options.shard_by = ShardBy::kCost;
    options.out_path = cost_sharded;
    Runner(options).run(grid);
  }

  const std::string expected = read_bytes(base);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(read_bytes(cost_single), expected);
  EXPECT_EQ(read_bytes(cost_sharded), expected);
  std::remove(base.c_str());
  std::remove(cost_single.c_str());
  std::remove(cost_sharded.c_str());
}

TEST(CampaignDeterminism, ResumeAgainstReshapedGridKeepsAllRecordsStably) {
  // Regression for the resume-ordering instability: records preserved from
  // a *previous grid shape* keep their stale cell indices, which collide
  // with re-anchored current indices. The canonical order must tie-break on
  // the key so the merged file does not depend on resume history, and the
  // foreign record must survive the rewrite (dedupe is by key, not index).
  const std::string path = temp_path("reshape.jsonl");
  Spec wide = derived_spec();
  wide.agents = {AgentKind::kSetGossip};
  wide.models = {CommModel::kSimpleBroadcast};
  wide.functions = {FunctionKind::kMax};
  wide.sizes = {4, 5};
  RunnerOptions options;
  options.out_path = path;
  Runner(options).run(single_spec_grid(wide));
  ASSERT_EQ(MetricsSink::read_file(path).size(), 2u);

  // Reshape: only n=5 remains, so the n=4 record (stale index 0) becomes
  // foreign while the n=5 record is re-anchored to index 0 — a collision.
  Spec narrow = wide;
  narrow.sizes = {5};
  Runner(options).run(single_spec_grid(narrow));
  const std::string first = read_bytes(path);
  const std::vector<CellRecord> merged = MetricsSink::read_file(path);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].cell, merged[1].cell);  // the index collision is real
  EXPECT_LT(merged[0].key, merged[1].key);    // resolved by the key order

  // Resuming again must be a byte-level no-op, run after run.
  Runner(options).run(single_spec_grid(narrow));
  EXPECT_EQ(read_bytes(path), first);
  Runner(options).run(single_spec_grid(narrow));
  EXPECT_EQ(read_bytes(path), first);
  std::remove(path.c_str());
}

TEST(CampaignTimeout, DeadlineTripsAsATimeoutVerdict) {
  // A hung-cell fixture: a huge round budget with an unreachable tolerance
  // would spin for minutes; the wall-clock deadline must cut it short and
  // record a "timeout" verdict (distinct from "failed").
  Cell cell;
  cell.index = 0;
  cell.suite = "hang";
  cell.agent = AgentKind::kMetropolis;
  cell.model = CommModel::kOutdegreeAware;
  cell.function = FunctionKind::kAverage;
  cell.schedule = ScheduleKind::kRandomSymmetric;
  cell.inputs = derived_inputs(48, 1);
  cell.rounds = 50'000'000;
  cell.tolerance = -1.0;  // sup-error can never go negative: never converges
  cell.timeout_ms = 50.0;
  const CellRecord record = Runner::run_cell(cell);
  EXPECT_EQ(record.verdict, "timeout");
  EXPECT_NE(record.reason.find("deadline"), std::string::npos)
      << record.reason;
  EXPECT_FALSE(record.success);
  EXPECT_GT(record.rounds, 0);           // it made progress before the cut
  EXPECT_LT(record.rounds, cell.rounds); // and stopped far short of budget

  // With no deadline the same fixture at a tiny budget completes normally.
  cell.timeout_ms = 0.0;
  cell.rounds = 3;
  EXPECT_EQ(Runner::run_cell(cell).verdict, "ok");
}

TEST(CampaignTimeout, RunnerOptionDefaultsTimeoutsAndSpecOverrides) {
  // RunnerOptions::cell_timeout_ms reaches every cell that does not carry
  // its own deadline, and Spec::timeout_ms survives expansion.
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kMetropolis};
  spec.models = {CommModel::kOutdegreeAware};
  spec.schedules = {ScheduleKind::kRandomSymmetric};
  spec.sizes = {48};
  spec.rounds = 50'000'000;
  spec.tolerance = -1.0;

  const std::vector<Cell> plain = single_spec_grid(spec).expand();
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_LE(plain[0].timeout_ms, 0.0);

  Spec with_deadline = spec;
  with_deadline.timeout_ms = 40.0;
  const std::vector<Cell> armed = single_spec_grid(with_deadline).expand();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_DOUBLE_EQ(armed[0].timeout_ms, 40.0);

  RunnerOptions options;
  options.cell_timeout_ms = 40.0;
  const std::vector<CellRecord> records =
      Runner(options).run(single_spec_grid(spec));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].verdict, "timeout");

  // The deadline is execution policy, not identity: the key is unchanged.
  EXPECT_EQ(plain[0].key(), armed[0].key());
}

TEST(Campaign, BandwidthAxisExpandsInnermostAndSuffixesKeys) {
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kSetGossip};
  spec.models = {CommModel::kSimpleBroadcast};
  spec.functions = {FunctionKind::kMax};
  spec.seeds = {1, 2};
  spec.bandwidths = {0, -1, 128};
  const std::vector<Cell> cells = single_spec_grid(spec).expand();
  ASSERT_EQ(cells.size(), 6u);
  // Innermost axis: bandwidth varies fastest, inside the seed loop.
  EXPECT_EQ(cells[0].bandwidth_bits, 0);
  EXPECT_EQ(cells[1].bandwidth_bits, -1);
  EXPECT_EQ(cells[2].bandwidth_bits, 128);
  EXPECT_EQ(cells[0].seed, cells[2].seed);
  EXPECT_NE(cells[0].seed, cells[3].seed);
  // Channel-off cells keep their pre-bandwidth key bytes; armed cells get
  // the "/b<bits>" coordinate suffix.
  EXPECT_EQ(cells[0].key().find("/b"), std::string::npos);
  EXPECT_NE(cells[1].key().find("/b-1"), std::string::npos);
  EXPECT_NE(cells[2].key().find("/b128"), std::string::npos);
}

TEST(Campaign, DefaultGridsCarryNoBandwidthCoordinate) {
  for (const std::string& name : {std::string("smoke"), std::string("tables")}) {
    for (const Cell& cell : Grid::preset(name).expand()) {
      EXPECT_EQ(cell.bandwidth_bits, 0) << cell.key();
      EXPECT_EQ(cell.key().find("/b"), std::string::npos) << cell.key();
    }
  }
}

TEST(Campaign, ExpandValidatesTheBandwidthAxis) {
  Spec no_axis = derived_spec();
  no_axis.agents = {AgentKind::kSetGossip};
  no_axis.models = {CommModel::kSimpleBroadcast};
  no_axis.bandwidths.clear();
  EXPECT_THROW(single_spec_grid(no_axis).expand(), std::invalid_argument);
  Spec bad_axis = derived_spec();
  bad_axis.agents = {AgentKind::kSetGossip};
  bad_axis.models = {CommModel::kSimpleBroadcast};
  bad_axis.bandwidths = {-2};
  EXPECT_THROW(single_spec_grid(bad_axis).expand(), std::invalid_argument);
}

TEST(Campaign, BoundedCellRecordsBandwidthExceededVerdict) {
  // The first frequency Push-Sum message (one entry + outdegree) needs more
  // than 128 bits, so the bounded channel trips in round 1 — a *model*
  // verdict distinct from "failed": the algorithm does not fit the channel.
  Cell cell;
  cell.index = 0;
  cell.suite = "bw";
  cell.agent = AgentKind::kFrequencyPushSum;
  cell.model = CommModel::kOutdegreeAware;
  cell.function = FunctionKind::kAverage;
  cell.schedule = ScheduleKind::kRandomStronglyConnected;
  cell.inputs = derived_inputs(6, 1);
  cell.rounds = 30;
  cell.bandwidth_bits = 128;
  const CellRecord record = Runner::run_cell(cell);
  EXPECT_EQ(record.verdict, "bandwidth_exceeded");
  EXPECT_NE(record.reason.find("channel budget"), std::string::npos)
      << record.reason;
  EXPECT_FALSE(record.success);
  EXPECT_EQ(record.rounds, 0);
  EXPECT_EQ(record.bandwidth_bits, 128);
  EXPECT_EQ(record.bits, -1);

  // The same cell metered instead of bounded completes and measures.
  cell.bandwidth_bits = -1;
  const CellRecord metered = Runner::run_cell(cell);
  EXPECT_EQ(metered.verdict, "ok");
  EXPECT_EQ(metered.bandwidth_bits, -1);
  EXPECT_GT(metered.bits, 0);

  // And a budget above every message admits the run.
  cell.bandwidth_bits = 1 << 20;
  const CellRecord roomy = Runner::run_cell(cell);
  EXPECT_EQ(roomy.verdict, "ok");
  EXPECT_GT(roomy.bits, 0);
  EXPECT_EQ(roomy.bits, metered.bits);
}

TEST(Campaign, RecordJsonRoundTripsBandwidthFields) {
  CellRecord record;
  record.cell = 7;
  record.key = "bw/freq-pushsum/outdegree-aware/none/average/random-strong/"
               "n6/v0/s1/b128";
  record.suite = "bw";
  record.verdict = "bandwidth_exceeded";
  record.bandwidth_bits = 128;
  record.bits = 4096;
  const std::string line = MetricsSink::to_json(record, false);
  EXPECT_NE(line.find("\"bandwidth_bits\":128"), std::string::npos);
  EXPECT_NE(line.find("\"bits\":4096"), std::string::npos);
  const auto parsed = MetricsSink::parse_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bandwidth_bits, 128);
  EXPECT_EQ(parsed->bits, 4096);
  EXPECT_EQ(MetricsSink::to_json(*parsed, false), line);

  // Channel off: the fields stay out of the line entirely, so meter-off
  // campaigns render byte-identically to pre-wire-layer output.
  CellRecord off;
  off.cell = 7;
  off.key = "bw/cell";
  EXPECT_EQ(MetricsSink::to_json(off, false).find("bandwidth_bits"),
            std::string::npos);
  EXPECT_EQ(MetricsSink::to_json(off, false).find("\"bits\""),
            std::string::npos);
}

TEST(Campaign, RunnerOptionBandwidthIsACoordinateOverride) {
  // Unlike cell_timeout_ms (execution policy), the bandwidth default
  // rewrites the cells' identity: keys gain the /b coordinate and the
  // records carry measured bits.
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kSetGossip};
  spec.models = {CommModel::kSimpleBroadcast};
  spec.functions = {FunctionKind::kMax};
  RunnerOptions options;
  options.bandwidth_bits = -1;
  const std::vector<CellRecord> records =
      Runner(options).run(single_spec_grid(spec));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].key.find("/b-1"), std::string::npos);
  EXPECT_EQ(records[0].bandwidth_bits, -1);
  EXPECT_GT(records[0].bits, 0);
}

TEST(CampaignDeterminism, BandwidthGridShardsToIdenticalCanonicalBytes) {
  // Metered bit totals are integer sums, so the bandwidth suite keeps the
  // byte-reproducibility contract across shard counts.
  const std::string single = temp_path("bw_single.jsonl");
  const std::string sharded = temp_path("bw_sharded.jsonl");
  const Grid grid = Grid::preset("bandwidth");
  RunnerOptions one;
  one.out_path = single;
  one.resume = false;
  const std::vector<CellRecord> records = Runner(one).run(grid);
  ASSERT_FALSE(records.empty());
  std::remove(sharded.c_str());
  for (int shard = 0; shard < 3; ++shard) {
    RunnerOptions options;
    options.shards = 3;
    options.shard_index = shard;
    options.out_path = sharded;
    Runner(options).run(grid);
  }
  EXPECT_EQ(read_bytes(single), read_bytes(sharded));
  std::remove(single.c_str());
  std::remove(sharded.c_str());
}

TEST(Campaign, PerturbationAxesExpandInnermostAndSuffixKeys) {
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kSetGossip};
  spec.models = {CommModel::kSimpleBroadcast};
  spec.functions = {FunctionKind::kMax};
  spec.seeds = {1, 2};
  spec.starts = {StartsKind::kSynchronous, StartsKind::kStaggered};
  spec.faults = {FaultsKind::kNone, FaultsKind::kCrash};
  const std::vector<Cell> cells = single_spec_grid(spec).expand();
  ASSERT_EQ(cells.size(), 8u);
  // faults is the innermost axis, starts the next one out, both inside seed.
  EXPECT_EQ(cells[0].faults, FaultsKind::kNone);
  EXPECT_EQ(cells[1].faults, FaultsKind::kCrash);
  EXPECT_EQ(cells[0].starts, StartsKind::kSynchronous);
  EXPECT_EQ(cells[2].starts, StartsKind::kStaggered);
  EXPECT_EQ(cells[0].seed, cells[3].seed);
  EXPECT_NE(cells[0].seed, cells[4].seed);
  // Unperturbed cells keep their pre-perturbation key bytes; perturbed
  // cells append the /w (starts) and /f (faults) coordinates.
  EXPECT_EQ(cells[0].key().find("/w"), std::string::npos);
  EXPECT_EQ(cells[0].key().find("/f"), std::string::npos);
  EXPECT_NE(cells[1].key().find("/fcrash"), std::string::npos);
  EXPECT_NE(cells[2].key().find("/wstaggered"), std::string::npos);
  EXPECT_NE(cells[3].key().find("/wstaggered"), std::string::npos);
  EXPECT_NE(cells[3].key().find("/fcrash"), std::string::npos);
}

TEST(Campaign, DefaultGridsCarryNoPerturbationCoordinate) {
  for (const std::string& name : {std::string("smoke"), std::string("tables"),
                                  std::string("adversarial")}) {
    for (const Cell& cell : Grid::preset(name).expand()) {
      EXPECT_EQ(cell.starts, StartsKind::kSynchronous) << cell.key();
      EXPECT_EQ(cell.faults, FaultsKind::kNone) << cell.key();
      // No perturbation coordinate suffix on any default cell ("/f" alone
      // is too loose a probe: "…/freq-pushsum/…" contains it).
      for (const char* suffix : {"/wstaggered", "/wstraggler", "/fcrash",
                                 "/fdrop", "/fcrash-drop"}) {
        EXPECT_EQ(cell.key().find(suffix), std::string::npos)
            << cell.key() << " carries " << suffix;
      }
    }
  }
}

TEST(Campaign, ExpandValidatesThePerturbationAxes) {
  Spec no_starts = derived_spec();
  no_starts.agents = {AgentKind::kSetGossip};
  no_starts.models = {CommModel::kSimpleBroadcast};
  no_starts.starts.clear();
  EXPECT_THROW(single_spec_grid(no_starts).expand(), std::invalid_argument);
  Spec no_faults = derived_spec();
  no_faults.agents = {AgentKind::kSetGossip};
  no_faults.models = {CommModel::kSimpleBroadcast};
  no_faults.faults.clear();
  EXPECT_THROW(single_spec_grid(no_faults).expand(), std::invalid_argument);
}

TEST(Campaign, PerturbationSlugsRoundTrip) {
  for (StartsKind kind : {StartsKind::kSynchronous, StartsKind::kStaggered,
                          StartsKind::kStraggler}) {
    EXPECT_EQ(parse_starts(slug(kind)), kind);
  }
  for (FaultsKind kind : {FaultsKind::kNone, FaultsKind::kCrash,
                          FaultsKind::kDrop, FaultsKind::kCrashDrop}) {
    EXPECT_EQ(parse_faults(slug(kind)), kind);
  }
  EXPECT_THROW((void)parse_starts("late"), std::invalid_argument);
  EXPECT_THROW((void)parse_faults("byzantine"), std::invalid_argument);
}

TEST(Campaign, PerturbedAutoCellsAreSkipped) {
  // The computability harness dispatches clean-model algorithms; perturbed
  // cells must pin an explicit agent so the prediction table can gate them.
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kAuto};
  spec.models = {CommModel::kOutdegreeAware};
  spec.faults = {FaultsKind::kDrop};
  const std::vector<Cell> cells = single_spec_grid(spec).expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].admissible);
  EXPECT_EQ(Runner::run_cell(cells[0]).verdict, "skipped");
}

TEST(Campaign, PredictFailureFollowsTheToleranceClaims) {
  Cell cell;
  cell.agent = AgentKind::kSetGossip;
  cell.schedule = ScheduleKind::kRandomSymmetric;

  // In-claim perturbations predict nothing.
  cell.starts = StartsKind::kStaggered;
  cell.faults = FaultsKind::kDrop;
  EXPECT_EQ(predict_failure(cell), "");
  cell.schedule = ScheduleKind::kPreferentialChurn;
  EXPECT_EQ(predict_failure(cell), "");

  // Gossip does not claim crash-stop.
  cell.schedule = ScheduleKind::kRandomSymmetric;
  cell.starts = StartsKind::kSynchronous;
  cell.faults = FaultsKind::kCrash;
  EXPECT_NE(predict_failure(cell).find("crash-stop"), std::string::npos);

  // Push-Sum claims churn only: executor-level async starts and drops are
  // both out of claim, and the reasons accumulate.
  cell.agent = AgentKind::kFrequencyPushSum;
  cell.schedule = ScheduleKind::kGeometricChurn;
  cell.starts = StartsKind::kStaggered;
  cell.faults = FaultsKind::kDrop;
  const std::string reasons = predict_failure(cell);
  EXPECT_NE(reasons.find("asynchronous starts"), std::string::npos);
  EXPECT_NE(reasons.find("message drops"), std::string::npos);
  EXPECT_EQ(reasons.find("churn"), std::string::npos);
  EXPECT_NE(reasons.find("; "), std::string::npos);

  // Metropolis claims async starts + churn but not one-sided drops.
  cell.agent = AgentKind::kMetropolis;
  cell.starts = StartsKind::kStraggler;
  cell.faults = FaultsKind::kNone;
  EXPECT_EQ(predict_failure(cell), "");
  cell.faults = FaultsKind::kDrop;
  EXPECT_NE(predict_failure(cell).find("message drops"), std::string::npos);
}

TEST(Campaign, RecordJsonRoundTripsPerturbationFields) {
  CellRecord record;
  record.cell = 3;
  record.key = "faults/set-gossip/simple-broadcast/none/max/pref-churn/"
               "n8/v0/s1/fcrash";
  record.suite = "faults";
  record.starts = "sync";
  record.faults = "crash";
  record.verdict = "expected_failure";
  record.reason = "crash-stop outside the agent's tolerance claim";
  record.predicted = true;
  const std::string line = MetricsSink::to_json(record, false);
  // Default starts stay out of the line; the armed faults coordinate and
  // the prediction flag appear.
  EXPECT_EQ(line.find("\"starts\""), std::string::npos);
  EXPECT_NE(line.find("\"faults\":\"crash\""), std::string::npos);
  EXPECT_NE(line.find("\"predicted\":true"), std::string::npos);
  const auto parsed = MetricsSink::parse_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->faults, "crash");
  EXPECT_TRUE(parsed->predicted);
  EXPECT_EQ(parsed->verdict, "expected_failure");
  EXPECT_EQ(MetricsSink::to_json(*parsed, false), line);

  // deadline_ms round-trips on timeout records and stays out otherwise.
  CellRecord timed = record;
  timed.verdict = "timeout";
  timed.deadline_ms = 50.0;
  const std::string timed_line = MetricsSink::to_json(timed, false);
  EXPECT_NE(timed_line.find("\"deadline_ms\":50"), std::string::npos);
  const auto timed_parsed = MetricsSink::parse_line(timed_line);
  ASSERT_TRUE(timed_parsed.has_value());
  EXPECT_DOUBLE_EQ(timed_parsed->deadline_ms, 50.0);
  EXPECT_EQ(MetricsSink::to_json(*timed_parsed, false), timed_line);
  EXPECT_EQ(line.find("deadline_ms"), std::string::npos);
}

TEST(Campaign, CrashUnderDeadlineIsExpectedFailureNeverOk) {
  // Deadline x perturbation interplay (both orders of breakdown):
  // a predicted-broken cell may finish its rounds unsuccessfully OR burn
  // its wall-clock budget — either way the verdict is "expected_failure",
  // never a plain "ok" or a crash of the harness.
  Cell cell;
  cell.index = 0;
  cell.suite = "interplay";
  cell.agent = AgentKind::kSetGossip;
  cell.model = CommModel::kSimpleBroadcast;
  cell.function = FunctionKind::kMax;
  cell.schedule = ScheduleKind::kRandomSymmetric;
  cell.inputs = derived_inputs(8, 1);
  cell.rounds = 50;
  cell.faults = FaultsKind::kCrash;
  cell.timeout_ms = 60'000.0;  // generous: the round budget ends it
  const CellRecord finished = Runner::run_cell(cell);
  EXPECT_EQ(finished.verdict, "expected_failure");
  EXPECT_TRUE(finished.predicted);
  EXPECT_FALSE(finished.success);
  EXPECT_NE(finished.reason.find("crash-stop"), std::string::npos);

  // A predicted cell that trips the deadline first: still expected_failure,
  // with both the prediction and the deadline in the reason, and the budget
  // recorded for resume.
  Cell hung;
  hung.index = 0;
  hung.suite = "interplay";
  hung.agent = AgentKind::kMetropolis;
  hung.model = CommModel::kOutdegreeAware;
  hung.function = FunctionKind::kAverage;
  hung.schedule = ScheduleKind::kRandomSymmetric;
  hung.inputs = derived_inputs(48, 1);
  hung.rounds = 50'000'000;
  hung.tolerance = -1.0;
  hung.faults = FaultsKind::kDrop;
  hung.timeout_ms = 50.0;
  const CellRecord timed = Runner::run_cell(hung);
  EXPECT_EQ(timed.verdict, "expected_failure");
  EXPECT_TRUE(timed.predicted);
  EXPECT_NE(timed.reason.find("message drops"), std::string::npos);
  EXPECT_NE(timed.reason.find("deadline"), std::string::npos);
  EXPECT_DOUBLE_EQ(timed.deadline_ms, 50.0);
}

TEST(CampaignTimeout, ResumeReattemptsTimeoutsUnderALargerBudget) {
  // Regression: resume used to reuse "timeout" records unconditionally, so
  // a cell that timed out once could never produce a better verdict — a
  // rerun with a 10x budget silently kept the stale timeout. The record now
  // carries the budget that produced it (deadline_ms) and is only reused
  // when the current budget is no larger.
  const std::string path = temp_path("timeout_resume.jsonl");
  std::remove(path.c_str());
  Spec spec = derived_spec();
  spec.agents = {AgentKind::kMetropolis};
  spec.models = {CommModel::kOutdegreeAware};
  spec.schedules = {ScheduleKind::kRandomSymmetric};
  spec.sizes = {48};
  spec.rounds = 50'000'000;
  spec.tolerance = -1.0;  // never converges: every budget times out
  const Grid grid = single_spec_grid(spec);

  RunnerOptions options;
  options.out_path = path;
  options.cell_timeout_ms = 50.0;
  const std::vector<CellRecord> first = Runner(options).run(grid);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(first[0].verdict, "timeout");
  EXPECT_DOUBLE_EQ(first[0].deadline_ms, 50.0);

  // Tamper-sentinel: rewrite the record so reuse is observable.
  std::vector<CellRecord> tampered = MetricsSink::read_file(path);
  ASSERT_EQ(tampered.size(), 1u);
  tampered[0].mechanism = "sentinel: reused, not re-run";
  MetricsSink::write_canonical(path, std::move(tampered), false);

  // Same budget: the timeout is conclusive, the record is reused.
  const std::vector<CellRecord> same = Runner(options).run(grid);
  ASSERT_EQ(same.size(), 1u);
  EXPECT_EQ(same[0].mechanism, "sentinel: reused, not re-run");

  // Larger budget: the cell must be re-attempted (sentinel gone), and the
  // fresh timeout records the new budget.
  options.cell_timeout_ms = 400.0;
  const std::vector<CellRecord> larger = Runner(options).run(grid);
  ASSERT_EQ(larger.size(), 1u);
  EXPECT_NE(larger[0].mechanism, "sentinel: reused, not re-run");
  EXPECT_EQ(larger[0].verdict, "timeout");
  EXPECT_DOUBLE_EQ(larger[0].deadline_ms, 400.0);
  std::remove(path.c_str());
}

TEST(Campaign, FaultsPresetPredictionsAreExactAndNothingPlainFails) {
  // The acceptance sweep: on the faults preset every cell either succeeds
  // ("ok" with success) or breaks exactly as the FaultTolerance table
  // predicts ("expected_failure") — no plain "failed", no timeout, no
  // predicted cell sneaking to success.
  const std::vector<CellRecord> records =
      Runner(RunnerOptions{}).run(Grid::preset("faults"));
  ASSERT_FALSE(records.empty());
  int expected_failures = 0;
  for (const CellRecord& record : records) {
    EXPECT_NE(record.verdict, "failed") << record.key << ": " << record.reason;
    EXPECT_NE(record.verdict, "timeout") << record.key;
    if (record.verdict == "ok") {
      EXPECT_TRUE(record.success) << record.key;
      EXPECT_FALSE(record.predicted) << "predicted cell succeeded: "
                                     << record.key;
    } else if (record.verdict == "expected_failure") {
      ++expected_failures;
      EXPECT_TRUE(record.predicted) << record.key;
      EXPECT_FALSE(record.success) << record.key;
      EXPECT_NE(record.reason.find("tolerance claim"), std::string::npos)
          << record.key << ": " << record.reason;
    } else {
      ADD_FAILURE() << "unexpected verdict '" << record.verdict << "' for "
                    << record.key;
    }
  }
  EXPECT_GT(expected_failures, 0);
}

TEST(CampaignDeterminism, FaultedGridThreadsAndShardsAreByteIdentical) {
  // The perturbation machinery (drop lottery, churn membership, start
  // gating) must preserve the byte-reproducibility contract: 4 worker
  // threads and 4 shards-in-turn equal the serial single-shard bytes.
  const std::string single = temp_path("faults_single.jsonl");
  const std::string threaded = temp_path("faults_threaded.jsonl");
  const std::string sharded = temp_path("faults_sharded.jsonl");
  Spec spec = derived_spec();
  spec.suite = "faulted";
  spec.agents = {AgentKind::kSetGossip, AgentKind::kMetropolis};
  spec.models = {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware};
  spec.functions = {FunctionKind::kMax, FunctionKind::kAverage};
  spec.schedules = {ScheduleKind::kPreferentialChurn,
                    ScheduleKind::kGeometricChurn};
  spec.sizes = {8};
  spec.seeds = {1, 2};
  spec.rounds = 300;
  spec.tolerance = 1e-3;
  spec.starts = {StartsKind::kSynchronous, StartsKind::kStraggler};
  spec.faults = {FaultsKind::kNone, FaultsKind::kCrash, FaultsKind::kDrop};
  Grid grid;
  grid.add(std::move(spec));

  RunnerOptions one;
  one.out_path = single;
  one.resume = false;
  const std::vector<CellRecord> records = Runner(one).run(grid);
  ASSERT_FALSE(records.empty());

  RunnerOptions four;
  four.out_path = threaded;
  four.resume = false;
  four.threads = 4;
  Runner(four).run(grid);
  EXPECT_EQ(read_bytes(single), read_bytes(threaded));

  std::remove(sharded.c_str());
  for (int shard = 0; shard < 4; ++shard) {
    RunnerOptions options;
    options.shards = 4;
    options.shard_index = shard;
    options.out_path = sharded;
    Runner(options).run(grid);
  }
  EXPECT_EQ(read_bytes(single), read_bytes(sharded));
  std::remove(single.c_str());
  std::remove(threaded.c_str());
  std::remove(sharded.c_str());
}

TEST(CampaignParallel, ConcurrentAppendsKeepWholeLines) {
  const std::string path = temp_path("parallel_sink.jsonl");
  const Grid grid = Grid::preset("smoke");
  RunnerOptions options;
  options.threads = 4;
  options.out_path = path;
  options.resume = false;
  const std::vector<CellRecord> records = Runner(options).run(grid);
  const std::vector<CellRecord> reread = MetricsSink::read_file(path);
  ASSERT_EQ(reread.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reread[i].key, records[i].key);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anonet::campaign
