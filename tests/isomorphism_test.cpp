// Tests for the small-multigraph isomorphism matcher.

#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace anonet {
namespace {

TEST(Isomorphism, RelabeledRing) {
  const Digraph a = directed_ring(5);
  Digraph b(5);
  // Same ring with vertices renamed by +2 mod 5.
  for (Vertex v = 0; v < 5; ++v) {
    b.add_edge((v + 2) % 5, (v + 2) % 5);
    b.add_edge((v + 2) % 5, (v + 3) % 5);
  }
  EXPECT_TRUE(are_isomorphic(a, b));
}

TEST(Isomorphism, DifferentEdgeCounts) {
  Digraph a = directed_ring(4);
  Digraph b = directed_ring(4);
  b.add_edge(0, 2);
  EXPECT_FALSE(are_isomorphic(a, b));
}

TEST(Isomorphism, MultiplicityMatters) {
  Digraph a(2);
  a.add_edge(0, 1);
  a.add_edge(0, 1);
  a.add_edge(1, 0);
  Digraph b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(1, 0);
  // a has double 0->1; b has double 1->0 — isomorphic by swapping vertices.
  EXPECT_TRUE(are_isomorphic(a, b));
  Digraph c(2);
  c.add_edge(0, 1);
  c.add_edge(0, 1);
  c.add_edge(0, 1);
  EXPECT_FALSE(are_isomorphic(a, c));
}

TEST(Isomorphism, ValuesConstrainTheMapping) {
  const Digraph ring = directed_ring(4);
  const std::vector<int> values_a{1, 2, 1, 2};
  const std::vector<int> values_b{2, 1, 2, 1};
  const std::vector<int> values_c{1, 1, 2, 2};
  EXPECT_TRUE(find_isomorphism(ring, values_a, ring, values_b).has_value());
  EXPECT_FALSE(find_isomorphism(ring, values_a, ring, values_c).has_value());
}

TEST(Isomorphism, ColorsConstrainTheMapping) {
  Digraph a(2);
  a.add_edge(0, 1, 1);
  a.add_edge(1, 0, 2);
  Digraph b(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 1);
  EXPECT_TRUE(are_isomorphic(a, b));  // swap 0 and 1
  Digraph c(2);
  c.add_edge(0, 1, 1);
  c.add_edge(1, 0, 1);
  EXPECT_FALSE(are_isomorphic(a, c));
}

TEST(Isomorphism, ReturnedMappingIsAWitness) {
  const Digraph a = directed_ring(6);
  const Digraph b = directed_ring(6);
  const std::vector<int> va(6, 0), vb(6, 0);
  const auto mapping = find_isomorphism(a, va, b, vb);
  ASSERT_TRUE(mapping.has_value());
  // Every edge of a must map to an edge of b.
  for (const Edge& e : a.edges()) {
    EXPECT_TRUE(b.has_edge((*mapping)[static_cast<std::size_t>(e.source)],
                           (*mapping)[static_cast<std::size_t>(e.target)]));
  }
}

TEST(Isomorphism, SelfNonIsomorphicPair) {
  // Directed 6-ring vs two directed 3-rings: same degrees everywhere.
  const Digraph a = directed_ring(6);
  Digraph b(6);
  for (Vertex v = 0; v < 6; ++v) b.add_edge(v, v);
  for (Vertex v = 0; v < 3; ++v) {
    b.add_edge(v, (v + 1) % 3);
    b.add_edge(3 + v, 3 + (v + 1) % 3);
  }
  EXPECT_FALSE(are_isomorphic(a, b));
}

TEST(Isomorphism, ValuationSizeMismatchThrows) {
  const Digraph a = directed_ring(3);
  EXPECT_THROW(find_isomorphism(a, {1, 2}, a, {1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace anonet
