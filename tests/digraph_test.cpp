// Unit tests for the directed multigraph (graph/digraph.hpp).

#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace anonet {
namespace {

Digraph triangle() {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  return g;
}

TEST(Digraph, AddEdgeValidatesVertices) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(Digraph(-1), std::invalid_argument);
}

TEST(Digraph, DegreesCountMultiplicity) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.outdegree(0), 3);
  EXPECT_EQ(g.indegree(1), 2);
  EXPECT_EQ(g.indegree(0), 1);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 2);
  EXPECT_EQ(g.edge_multiplicity(1, 0), 0);
}

TEST(Digraph, AdjacencySpansSurviveRebuild) {
  Digraph g = triangle();
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  g.add_edge(0, 2);  // invalidates and rebuilds lazily
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.in_edges(2).size(), 2u);
}

TEST(Digraph, SelfLoops) {
  Digraph g = triangle();
  EXPECT_FALSE(g.has_all_self_loops());
  EXPECT_EQ(g.ensure_self_loops(), 3);
  EXPECT_TRUE(g.has_all_self_loops());
  EXPECT_EQ(g.ensure_self_loops(), 0);  // idempotent
}

TEST(Digraph, SymmetryIsAboutMultisets) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.is_symmetric());
  g.add_edge(1, 0);
  EXPECT_TRUE(g.is_symmetric());
  g.add_edge(0, 1);  // multiplicity 2 vs 1
  EXPECT_FALSE(g.is_symmetric());
  g.add_edge(1, 0);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Digraph, Reversed) {
  Digraph g = triangle();
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_TRUE(r.has_edge(0, 2));
  EXPECT_FALSE(r.has_edge(0, 1));
}

TEST(Digraph, AssignOutputPortsGivesValidLabelling) {
  Digraph g = triangle();
  g.ensure_self_loops();
  g.assign_output_ports();
  for (Vertex v = 0; v < 3; ++v) {
    std::vector<int> ports;
    for (EdgeId id : g.out_edges(v)) {
      ports.push_back(static_cast<int>(g.edge(id).color));
    }
    std::sort(ports.begin(), ports.end());
    for (std::size_t k = 0; k < ports.size(); ++k) {
      EXPECT_EQ(ports[k], static_cast<int>(k) + 1);
    }
  }
}

TEST(Digraph, GraphProductMatchesFootnote3) {
  // G1: 0->1, G2: 1->2 gives product edge 0->2.
  Digraph g1(3);
  g1.add_edge(0, 1);
  Digraph g2(3);
  g2.add_edge(1, 2);
  const Digraph product = graph_product(g1, g2);
  EXPECT_TRUE(product.has_edge(0, 2));
  EXPECT_EQ(product.edge_count(), 1);
}

TEST(Digraph, GraphProductWithSelfLoopsAccumulatesReachability) {
  Digraph g(3);
  g.ensure_self_loops();
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Digraph product = graph_product(g, g);
  EXPECT_TRUE(product.has_edge(0, 2));  // via 1
  EXPECT_TRUE(product.has_edge(0, 1));  // self-loop keeps direct edges
  EXPECT_FALSE(product.has_edge(2, 0));
}

TEST(Digraph, GraphProductSizeMismatchThrows) {
  EXPECT_THROW(graph_product(Digraph(2), Digraph(3)), std::invalid_argument);
}

TEST(Digraph, CompletenessRecognition) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_complete_with_self_loops(g));
  g.add_edge(1, 0);
  EXPECT_TRUE(is_complete_with_self_loops(g));
}

TEST(Digraph, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.vertex_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_TRUE(g.has_all_self_loops());  // vacuously
}

}  // namespace
}  // namespace anonet
