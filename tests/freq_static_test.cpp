// Tests for the three static frequency computations (core/freq_static.hpp):
// the positive half of Theorem 4.1 in each communication model.

#include "core/freq_static.hpp"

#include <gtest/gtest.h>

#include "core/minbase_agent.hpp"
#include "dynamics/schedules.hpp"
#include "fibration/minimum_base.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

// Runs the full distributed pipeline (min-base agents + per-model ratio
// rule) and returns each agent's frequency estimate after `rounds`.
std::vector<std::optional<Frequency>> run_pipeline(
    const Digraph& g, const std::vector<std::int64_t>& inputs, CommModel model,
    int rounds) {
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<MinBaseAgent> agents;
  for (std::int64_t input : inputs) {
    agents.emplace_back(registry, codec, input, model);
  }
  Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(g),
                              std::move(agents), model);
  exec.run(rounds);
  std::vector<std::optional<Frequency>> result;
  for (const MinBaseAgent& agent : exec.agents()) {
    result.push_back(
        static_frequency_estimate(agent.candidate(), *codec, model));
  }
  return result;
}

TEST(FreqStatic, FibreMatrixDefinition) {
  // Base: two vertices, edges 0->1 (x2), 1->0 (x1), self-loops; outdegrees
  // b = (3, 2).
  Digraph base(2);
  base.add_edge(0, 0);
  base.add_edge(1, 1);
  base.add_edge(0, 1);
  base.add_edge(0, 1);
  base.add_edge(1, 0);
  const RationalMatrix m = fibre_matrix(base, {3, 2});
  EXPECT_EQ(m.at(0, 0), r(1 - 3));  // d_00 - b_0
  EXPECT_EQ(m.at(0, 1), r(2));
  EXPECT_EQ(m.at(1, 0), r(1));
  EXPECT_EQ(m.at(1, 1), r(1 - 2));
}

TEST(FreqStatic, SymmetricRatiosOnKnownBase) {
  // Base of a star-like symmetric graph: hub class 0, leaf class 1 with
  // d_01 = 1 (each leaf hears hub once), d_10 = 3 (hub hears 3 leaves):
  // z_1 / z_0 = d_10 / d_01 = 3.
  Digraph base(2);
  base.add_edge(0, 0);
  base.add_edge(1, 1);
  base.add_edge(1, 0);
  base.add_edge(1, 0);
  base.add_edge(1, 0);
  base.add_edge(0, 1);
  const auto z = fibre_ratios_symmetric(base);
  ASSERT_TRUE(z.has_value());
  EXPECT_EQ((*z)[0], BigInt(1));
  EXPECT_EQ((*z)[1], BigInt(3));
}

TEST(FreqStatic, SymmetricRatiosRejectAsymmetricSupport) {
  Digraph base(2);
  base.add_edge(0, 0);
  base.add_edge(1, 1);
  base.add_edge(0, 1);  // no reverse edge
  EXPECT_FALSE(fibre_ratios_symmetric(base).has_value());
}

TEST(FreqStatic, PortRatiosAreAllOnes) {
  const auto z = fibre_ratios_ports(directed_ring(4));
  EXPECT_EQ(z, std::vector<BigInt>(4, BigInt(1)));
}

TEST(FreqStatic, FrequencyFromRatios) {
  const Frequency nu = frequency_from_ratios({5, 7, 5}, {BigInt(1), BigInt(2),
                                                         BigInt(3)});
  EXPECT_EQ(nu.at(5), r(4, 6) );
  EXPECT_EQ(nu.at(7), r(2, 6));
  EXPECT_THROW(frequency_from_ratios({1}, {BigInt(0)}), std::invalid_argument);
  EXPECT_THROW(frequency_from_ratios({1, 2}, {BigInt(1)}),
               std::invalid_argument);
}

// --- end-to-end per model ----------------------------------------------------

TEST(FreqStatic, OutdegreeAwarePipelineRecoversExactFrequency) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Digraph base = random_strongly_connected(3, 3, seed + 60);
    const LiftedGraph lift = random_lift(base, {3, 3, 3}, seed);
    ASSERT_TRUE(is_strongly_connected(lift.graph));
    std::vector<std::int64_t> inputs;
    for (Vertex v = 0; v < lift.graph.vertex_count(); ++v) {
      inputs.push_back(v % 3 == 0 ? 10 : 20);
    }
    const Frequency truth = Frequency::of(inputs);
    const int rounds =
        lift.graph.vertex_count() + 2 * diameter(lift.graph) + 2;
    const auto estimates =
        run_pipeline(lift.graph, inputs, CommModel::kOutdegreeAware, rounds);
    for (const auto& estimate : estimates) {
      ASSERT_TRUE(estimate.has_value()) << seed;
      EXPECT_EQ(*estimate, truth) << seed;
    }
  }
}

TEST(FreqStatic, SymmetricPipelineRecoversExactFrequency) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Digraph g = random_symmetric_connected(8, 4, seed + 5);
    const std::vector<std::int64_t> inputs{1, 1, 2, 2, 2, 3, 1, 2};
    const Frequency truth = Frequency::of(inputs);
    const int rounds = g.vertex_count() + 2 * diameter(g) + 2;
    const auto estimates =
        run_pipeline(g, inputs, CommModel::kSymmetricBroadcast, rounds);
    for (const auto& estimate : estimates) {
      ASSERT_TRUE(estimate.has_value()) << seed;
      EXPECT_EQ(*estimate, truth) << seed;
    }
  }
}

TEST(FreqStatic, OutputPortPipelineRecoversExactFrequency) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Digraph base = random_strongly_connected(4, 3, seed + 21);
    base.assign_output_ports();
    const LiftedGraph lift = random_covering_lift(base, 3, seed);
    ASSERT_TRUE(is_strongly_connected(lift.graph));
    std::vector<std::int64_t> inputs;
    for (Vertex v = 0; v < lift.graph.vertex_count(); ++v) {
      inputs.push_back(lift.projection[static_cast<std::size_t>(v)] % 2);
    }
    const Frequency truth = Frequency::of(inputs);
    const int rounds =
        lift.graph.vertex_count() + 2 * diameter(lift.graph) + 2;
    const auto estimates =
        run_pipeline(lift.graph, inputs, CommModel::kOutputPortAware, rounds);
    for (const auto& estimate : estimates) {
      ASSERT_TRUE(estimate.has_value()) << seed;
      EXPECT_EQ(*estimate, truth) << seed;
    }
  }
}

TEST(FreqStatic, SimpleBroadcastYieldsNoEstimate) {
  const Digraph g = bidirectional_ring(4);
  const auto estimates = run_pipeline(g, {1, 2, 1, 2},
                                      CommModel::kSimpleBroadcast, 12);
  for (const auto& estimate : estimates) {
    EXPECT_FALSE(estimate.has_value());
  }
}

TEST(FreqStatic, AverageOnRingIsImpossibleWithBroadcastButExactWithDegrees) {
  // The headline Table 1 contrast on one graph: R^6 with inputs of average
  // 3/2 — broadcast agents cannot output it, outdegree-aware agents can.
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 2, 1, 2, 1, 2};
  const SymmetricFunction avg = average_function();
  const auto broadcast =
      run_pipeline(g, inputs, CommModel::kSimpleBroadcast, 20);
  EXPECT_FALSE(broadcast.front().has_value());
  const auto aware = run_pipeline(g, inputs, CommModel::kOutdegreeAware, 20);
  ASSERT_TRUE(aware.front().has_value());
  EXPECT_EQ(avg.eval_frequency(*aware.front()), r(3, 2));
}

TEST(FreqStatic, TorusCollapsesAndRecoversFrequency) {
  // A 2x4 torus with alternating stripes: highly symmetric topology, tiny
  // minimum base, exact frequency out of the symmetric pipeline.
  const Digraph g = torus(2, 4);
  const std::vector<std::int64_t> inputs{1, 2, 1, 2, 1, 2, 1, 2};
  const Frequency truth = Frequency::of(inputs);
  const int rounds = g.vertex_count() + 2 * diameter(g) + 2;
  const auto estimates =
      run_pipeline(g, inputs, CommModel::kSymmetricBroadcast, rounds);
  for (const auto& estimate : estimates) {
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(*estimate, truth);
  }
}

TEST(FreqStatic, DeBruijnViaOutdegreeAwareness) {
  // de Bruijn graphs are strongly connected and non-symmetric — only the
  // outdegree-aware rule applies among the directed options.
  const Digraph g = de_bruijn(2, 3);
  std::vector<std::int64_t> inputs;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    inputs.push_back(v % 2 == 0 ? 4 : 9);
  }
  const Frequency truth = Frequency::of(inputs);
  const int rounds = g.vertex_count() + 2 * diameter(g) + 2;
  const auto estimates =
      run_pipeline(g, inputs, CommModel::kOutdegreeAware, rounds);
  for (const auto& estimate : estimates) {
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(*estimate, truth);
  }
}

TEST(FreqStatic, HypercubeAllValuesDistinct) {
  // Prime graph (distinct values): the base is the graph itself and every
  // frequency is 1/n.
  const Digraph g = hypercube(3);
  std::vector<std::int64_t> inputs;
  for (Vertex v = 0; v < 8; ++v) inputs.push_back(100 + v);
  const auto estimates = run_pipeline(g, inputs,
                                      CommModel::kSymmetricBroadcast, 24);
  const Frequency truth = Frequency::of(inputs);
  for (const auto& estimate : estimates) {
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(*estimate, truth);
  }
}

}  // namespace
}  // namespace anonet
