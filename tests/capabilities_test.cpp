// Tests for the capability-traits layer (runtime/capabilities.hpp) and its
// enforcement in the Executor: the machine-checked Table 1. The *forbidden*
// pairings that must fail to compile live under tests/compile_fail/ (they
// cannot appear here by definition); this file covers the admissibility
// predicate itself, the runtime throw for dynamically chosen models, the
// compile-time ModelTag path for legal pairings, and the per-round
// symmetric-network verification that kSymmetricOnly buys.

#include "runtime/capabilities.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/gossip.hpp"
#include "core/history_tree.hpp"
#include "core/metropolis.hpp"
#include "core/pushsum.hpp"
#include "core/uniform_consensus.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

// --- the admissibility predicate (Table 1) -----------------------------------

TEST(Capabilities, ModelProvidesFollowsTableOne) {
  constexpr auto out = ModelCapabilities::kNeedsOutdegree;
  constexpr auto ports = ModelCapabilities::kNeedsOutputPorts;
  // Outdegree consumers: only the outdegree-seeing models qualify.
  EXPECT_FALSE(model_provides(CommModel::kSimpleBroadcast, out));
  EXPECT_FALSE(model_provides(CommModel::kSymmetricBroadcast, out));
  EXPECT_TRUE(model_provides(CommModel::kOutdegreeAware, out));
  EXPECT_TRUE(model_provides(CommModel::kOutputPortAware, out));
  // Port addressers: only the one non-isotropic model qualifies.
  EXPECT_FALSE(model_provides(CommModel::kSimpleBroadcast, ports));
  EXPECT_FALSE(model_provides(CommModel::kOutdegreeAware, ports));
  EXPECT_TRUE(model_provides(CommModel::kOutputPortAware, ports));
  // No demands: every model qualifies.
  for (CommModel m : {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
                      CommModel::kSymmetricBroadcast,
                      CommModel::kOutputPortAware}) {
    EXPECT_TRUE(model_provides(m, ModelCapabilities::kNone));
    EXPECT_TRUE(model_provides(m, ModelCapabilities::kModelPolymorphic));
    // kSymmetricOnly restricts the network class, never the model.
    EXPECT_TRUE(model_provides(m, ModelCapabilities::kSymmetricOnly));
  }
  // Polymorphic overrides other declared bits (MinBaseAgent's contract).
  EXPECT_TRUE(model_provides(
      CommModel::kSimpleBroadcast,
      out | ports | ModelCapabilities::kModelPolymorphic));
}

TEST(Capabilities, NeedsSymmetricModelAdmitsOnlySymmetricBroadcast) {
  constexpr auto needs = ModelCapabilities::kNeedsSymmetricModel;
  // Unlike kSymmetricOnly (a network-class restriction every model can
  // carry), kNeedsSymmetricModel restricts the model itself: only
  // kSymmetricBroadcast certifies symmetry at delivery time.
  EXPECT_TRUE(model_provides(CommModel::kSymmetricBroadcast, needs));
  EXPECT_FALSE(model_provides(CommModel::kSimpleBroadcast, needs));
  EXPECT_FALSE(model_provides(CommModel::kOutdegreeAware, needs));
  EXPECT_FALSE(model_provides(CommModel::kOutputPortAware, needs));
  // The combination the history tree declares.
  constexpr auto both = ModelCapabilities::kSymmetricOnly | needs;
  EXPECT_TRUE(model_provides(CommModel::kSymmetricBroadcast, both));
  EXPECT_FALSE(model_provides(CommModel::kOutdegreeAware, both));
  // Polymorphic still overrides, as for every other bit.
  EXPECT_TRUE(model_provides(
      CommModel::kOutdegreeAware,
      needs | ModelCapabilities::kModelPolymorphic));
}

TEST(Capabilities, CoreAgentDeclarationsMatchTheirTableCells) {
  static_assert(agent_capabilities<PushSumAgent>() ==
                ModelCapabilities::kNeedsOutdegree);
  static_assert(agent_capabilities<SetGossipAgent>() ==
                ModelCapabilities::kNone);
  static_assert(has_capability(agent_capabilities<MetropolisAgent>(),
                               ModelCapabilities::kNeedsOutdegree));
  static_assert(has_capability(agent_capabilities<MetropolisAgent>(),
                               ModelCapabilities::kSymmetricOnly));
  static_assert(agent_capabilities<UniformWeightAgent>() ==
                ModelCapabilities::kSymmetricOnly);
  SUCCEED();
}

// --- runtime enforcement (dynamically chosen model) --------------------------

TEST(Capabilities, ExecutorRejectsOutdegreeAgentUnderBroadcastModels) {
  for (CommModel hidden : {CommModel::kSimpleBroadcast,
                           CommModel::kSymmetricBroadcast}) {
    auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
    std::vector<PushSumAgent> agents(4, PushSumAgent(1.0, 1.0));
    EXPECT_THROW(Executor<PushSumAgent>(net, std::move(agents), hidden),
                 std::invalid_argument)
        << to_string(hidden);
  }
}

TEST(Capabilities, ExecutorAcceptsOutdegreeAgentUnderOutdegreeAware) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<PushSumAgent> agents(4, PushSumAgent(1.0, 1.0));
  Executor<PushSumAgent> exec(net, std::move(agents),
                              CommModel::kOutdegreeAware);
  EXPECT_NO_THROW(exec.run(3));
}

TEST(Capabilities, UndeclaredAgentIsTreatedAsPolymorphic) {
  // Downstream/test agents that predate the annotation scheme keep working
  // under every model; the lint, not the type system, demands annotations
  // for library code.
  struct LegacyProbeAgent {
    struct Message {
      int x = 0;
    };
    [[nodiscard]] Message send(int, int) const { return {}; }
    void receive(std::span<const Message>) {}
  };
  static_assert(agent_capabilities<LegacyProbeAgent>() ==
                ModelCapabilities::kModelPolymorphic);
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(3));
  std::vector<LegacyProbeAgent> agents(3);
  Executor<LegacyProbeAgent> exec(net, std::move(agents),
                                  CommModel::kSimpleBroadcast);
  EXPECT_NO_THROW(exec.step());
}

// --- compile-time ModelTag path ----------------------------------------------

TEST(Capabilities, ModelTagConstructorRunsLegalPairings) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<PushSumAgent> agents(4, PushSumAgent(2.0, 1.0));
  // under<...> resolves the model at compile time; the forbidden variants
  // of this construction are the compile_fail.* CTest entries.
  Executor<PushSumAgent> exec(net, std::move(agents),
                              under<CommModel::kOutdegreeAware>);
  exec.run(5);
  EXPECT_EQ(exec.round(), 5);
  EXPECT_EQ(exec.model(), CommModel::kOutdegreeAware);

  std::vector<SetGossipAgent> gossips;
  for (int i = 0; i < 4; ++i) gossips.emplace_back(i);
  Executor<SetGossipAgent> simple(net, std::move(gossips),
                                  under<CommModel::kSimpleBroadcast>);
  EXPECT_NO_THROW(simple.step());
}

// --- kSymmetricOnly: per-round network-class verification --------------------

TEST(Capabilities, SymmetricOnlyAgentRejectsAsymmetricRoundGraph) {
  // Metropolis runs under kOutdegreeAware — a model with no symmetry check
  // of its own — but declares kSymmetricOnly; the executor must verify the
  // round graph anyway instead of silently losing sum preservation.
  Digraph ring = directed_ring(4);
  ring.ensure_self_loops();
  auto net = std::make_shared<StaticSchedule>(ring);
  std::vector<MetropolisAgent> agents(4, MetropolisAgent(1.0));
  Executor<MetropolisAgent> exec(net, std::move(agents),
                                 CommModel::kOutdegreeAware);
  EXPECT_THROW(exec.step(), std::logic_error);
}

TEST(Capabilities, SymmetricOnlyAgentRunsOnSymmetricRoundGraphs) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<MetropolisAgent> agents(4, MetropolisAgent(1.0));
  Executor<MetropolisAgent> exec(net, std::move(agents),
                                 CommModel::kOutdegreeAware);
  EXPECT_NO_THROW(exec.run(10));
}

// --- diagnosis strings -------------------------------------------------------

TEST(Capabilities, MismatchDescriptionNamesCapabilityAndModel) {
  const std::string msg = describe_model_mismatch(
      CommModel::kSimpleBroadcast, ModelCapabilities::kNeedsOutdegree);
  EXPECT_NE(msg.find("kNeedsOutdegree"), std::string::npos);
  EXPECT_NE(msg.find("hides"), std::string::npos);
  const std::string port_msg = describe_model_mismatch(
      CommModel::kOutdegreeAware, ModelCapabilities::kNeedsOutputPorts);
  EXPECT_NE(port_msg.find("kNeedsOutputPorts"), std::string::npos);
  const std::string sym_msg = describe_model_mismatch(
      CommModel::kOutdegreeAware, ModelCapabilities::kNeedsSymmetricModel);
  EXPECT_NE(sym_msg.find("kNeedsSymmetricModel"), std::string::npos);
  EXPECT_NE(sym_msg.find("symmetric broadcast"), std::string::npos);
}

TEST(Capabilities, HistoryTreeAgentDeclaresSymmetricModelRequirement) {
  // HistoryFrequencyAgent is the one agent whose correctness argument needs
  // the model (not just the schedule) to certify symmetry; see
  // core/history_tree.hpp. The forbidden pairing is the
  // compile_fail.symmetric_model_agent_under_outdegree_aware CTest entry.
  static_assert(has_capability(agent_capabilities<HistoryFrequencyAgent>(),
                               ModelCapabilities::kNeedsSymmetricModel));
  static_assert(has_capability(agent_capabilities<HistoryFrequencyAgent>(),
                               ModelCapabilities::kSymmetricOnly));
  SUCCEED();
}

}  // namespace
}  // namespace anonet
