// Tests for bounded-denominator best rational approximation
// (support/farey.hpp) — the rounding step of Corollary 5.3.

#include "support/farey.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace anonet {
namespace {

// Brute-force nearest p/q with q <= bound, scanning a generous p range.
Rational brute_force_nearest(double value, std::uint32_t bound) {
  Rational best(0);
  double best_error = std::abs(value);
  for (std::uint32_t q = 1; q <= bound; ++q) {
    const auto base =
        static_cast<std::int64_t>(std::floor(value * static_cast<double>(q)));
    for (std::int64_t p = base - 1; p <= base + 2; ++p) {
      const double error =
          std::abs(value - static_cast<double>(p) / static_cast<double>(q));
      if (error < best_error - 1e-15) {
        best_error = error;
        best = Rational(BigInt(p), BigInt(q));
      }
    }
  }
  return best;
}

TEST(Farey, ExactValuesInQnAreReturnedVerbatim) {
  for (int q = 1; q <= 10; ++q) {
    for (int p = 0; p <= q; ++p) {
      const Rational x{BigInt(p), BigInt(q)};
      EXPECT_EQ(nearest_rational(x, 10), x) << p << "/" << q;
    }
  }
}

TEST(Farey, ClassicConstants) {
  // Best approximations of pi: 3, 13/4, 16/5, 19/6, 22/7, ..., 355/113.
  EXPECT_EQ(nearest_rational(3.14159265358979, 1), Rational(3));
  EXPECT_EQ(nearest_rational(3.14159265358979, 7),
            Rational(BigInt(22), BigInt(7)));
  EXPECT_EQ(nearest_rational(3.14159265358979, 113),
            Rational(BigInt(355), BigInt(113)));
  // sqrt(2) ~ 1.41421356: 1, 3/2, 7/5, 17/12, 41/29, 99/70.
  EXPECT_EQ(nearest_rational(std::sqrt(2.0), 12),
            Rational(BigInt(17), BigInt(12)));
  EXPECT_EQ(nearest_rational(std::sqrt(2.0), 70),
            Rational(BigInt(99), BigInt(70)));
}

TEST(Farey, NegativeValues) {
  EXPECT_EQ(nearest_rational(-0.5, 2), Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(nearest_rational(-3.14159265358979, 7),
            Rational(BigInt(-22), BigInt(7)));
}

TEST(Farey, ZeroDenominatorBoundThrows) {
  EXPECT_THROW(nearest_rational(0.5, 0), std::invalid_argument);
}

TEST(Farey, NonFiniteThrows) {
  EXPECT_THROW(nearest_rational(std::nan(""), 3), std::invalid_argument);
  EXPECT_THROW(nearest_rational(std::numeric_limits<double>::infinity(), 3),
               std::invalid_argument);
}

TEST(Farey, MatchesBruteForceOnRandomInputs) {
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 300; ++i) {
    const double x = dist(rng);
    for (std::uint32_t bound : {1u, 2u, 3u, 5u, 8u, 13u, 21u}) {
      const Rational fast = nearest_rational(x, bound);
      const Rational brute = brute_force_nearest(x, bound);
      const double fast_error = std::abs(x - fast.to_double());
      const double brute_error = std::abs(x - brute.to_double());
      // Either the same fraction or an equally good one (ties).
      EXPECT_LE(fast_error, brute_error + 1e-12)
          << "x=" << x << " bound=" << bound << " fast=" << fast.to_string()
          << " brute=" << brute.to_string();
      EXPECT_LE(fast.denominator(), BigInt(static_cast<std::int64_t>(bound)));
    }
  }
}

TEST(Farey, RecoversTrueFrequencyWithinHalfGap) {
  // The Corollary 5.3 contract: distinct elements of Q_N are >= 1/N^2 apart,
  // so any estimate within 1/(2 N^2) of the true frequency rounds to it.
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<int> n_dist(1, 12);
  std::uniform_real_distribution<double> sign(-1.0, 1.0);
  const std::uint32_t bound = 12;
  for (int i = 0; i < 500; ++i) {
    const int q = n_dist(rng);
    std::uniform_int_distribution<int> p_dist(0, q);
    const int p = p_dist(rng);
    const double truth = static_cast<double>(p) / q;
    const double noise =
        sign(rng) * 0.4 / (static_cast<double>(bound) * bound);
    const Rational rounded = nearest_rational(truth + noise, bound);
    EXPECT_EQ(rounded, Rational(BigInt(p), BigInt(q)))
        << "p/q=" << p << "/" << q << " noise=" << noise;
  }
}

TEST(Farey, HugeDenominatorInputTerminatesQuickly) {
  // Values with enormous continued-fraction coefficients must not loop
  // (naive Stern-Brocot walks would take ~1e9 steps on 1e-9).
  EXPECT_EQ(nearest_rational(1e-9, 1000), Rational(0));
  EXPECT_EQ(nearest_rational(1.0 - 1e-9, 1000), Rational(1));
}

}  // namespace
}  // namespace anonet
