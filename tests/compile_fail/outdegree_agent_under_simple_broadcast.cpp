// MUST NOT COMPILE — covered by CTest as
// compile_fail.outdegree_agent_under_simple_broadcast (WILL_FAIL).
//
// Push-Sum's 1/d mass split declares ModelCapabilities::kNeedsOutdegree, and
// simple broadcast is exactly the model that hides the outdegree (Table 1:
// only set-based functions are computable there). Selecting the pairing
// through the compile-time ModelTag path must trip the explanatory
// static_assert in Executor's ModelTag constructor.

#include <memory>
#include <vector>

#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

int main() {
  using namespace anonet;
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<PushSumAgent> agents(4, PushSumAgent(1.0, 1.0));
  Executor<PushSumAgent> exec(net, std::move(agents),
                              under<CommModel::kSimpleBroadcast>);
  exec.step();
  return 0;
}
