// MUST NOT COMPILE. An agent registered with the static audit but missing
// the kModelCapabilities declaration: audit_declarations() fires its named
// static_assert ("agent must declare ... kModelCapabilities"). This is the
// deletion drill for the annotation scheme — strip the Table 1 row from any
// core agent and the build dies exactly like this TU does.

#include <cstdint>
#include <vector>

#include "runtime/static_audit.hpp"

namespace {

class UndeclaredAgent {
 public:
  struct Message {
    std::int64_t value;
  };

  static constexpr bool kParallelSafe = true;
  // kModelCapabilities deliberately missing.

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
  }

 private:
  std::int64_t value_ = 0;
};

ANONET_STATIC_AUDIT_DECLARATIONS(UndeclaredAgent);

}  // namespace

int main() { return 0; }
