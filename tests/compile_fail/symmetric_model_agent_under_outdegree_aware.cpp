// MUST NOT COMPILE — covered by CTest as
// compile_fail.symmetric_model_agent_under_outdegree_aware (WILL_FAIL).
//
// HistoryFrequencyAgent declares ModelCapabilities::kNeedsSymmetricModel:
// its double-counting argument quantifies over every round the executor
// accepts, so only CommModel::kSymmetricBroadcast — the one model that
// rejects an asymmetric round at delivery time — is admissible. Running it
// under kOutdegreeAware, even on a schedule that happens to be symmetric,
// must trip the static_assert in Executor's ModelTag constructor.

#include <memory>
#include <vector>

#include "core/history_tree.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

int main() {
  using namespace anonet;
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<HistoryFrequencyAgent> agents;
  for (std::int64_t v : {1, 2, 2, 1}) {
    agents.emplace_back(registry, codec, v);
  }
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  Executor<HistoryFrequencyAgent> exec(net, std::move(agents),
                                       under<CommModel::kOutdegreeAware>);
  exec.step();
  return 0;
}
