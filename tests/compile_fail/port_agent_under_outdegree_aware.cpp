// MUST NOT COMPILE — covered by CTest as
// compile_fail.port_agent_under_outdegree_aware (WILL_FAIL).
//
// An agent that addresses recipients through its port parameter declares
// ModelCapabilities::kNeedsOutputPorts; every model except
// kOutputPortAware is isotropic (one message replicated to all
// out-neighbors), so the pairing with kOutdegreeAware must trip the
// static_assert in Executor's ModelTag constructor.

#include <memory>
#include <span>
#include <vector>

#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace {

struct PortSplitterAgent {
  struct Message {
    int token = 0;
  };
  static constexpr anonet::ModelCapabilities kModelCapabilities =
      anonet::ModelCapabilities::kNeedsOutputPorts;

  [[nodiscard]] Message send(int /*outdegree*/, int port) const {
    return Message{port};
  }
  void receive(std::span<const Message> /*messages*/) {}
};

}  // namespace

int main() {
  using namespace anonet;
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<PortSplitterAgent> agents(4);
  Executor<PortSplitterAgent> exec(net, std::move(agents),
                                   under<CommModel::kOutdegreeAware>);
  exec.step();
  return 0;
}
