// MUST NOT COMPILE. An agent registered with the static audit but silent
// about parallel safety: audit_declarations() fires its named static_assert
// ("agent must declare ... kParallelSafe explicitly"). Silence is the
// dangerous state — the executor's kParallelSafeAgent concept treats an
// undeclared agent exactly like a kParallelSafe = false one, so a renamed
// member would serialize every campaign without any diagnostic. The audit
// turns that silence into this compile error.

#include <cstdint>
#include <vector>

#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"

namespace {

class SilentAgent {
 public:
  struct Message {
    std::int64_t value;
  };

  // kParallelSafe deliberately missing (neither true nor false).
  static constexpr anonet::ModelCapabilities kModelCapabilities =
      anonet::ModelCapabilities::kNone;

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
  }

 private:
  std::int64_t value_ = 0;
};

ANONET_STATIC_AUDIT_DECLARATIONS(SilentAgent);

}  // namespace

int main() { return 0; }
