// MUST NOT COMPILE. A fully annotated agent whose Message has no
// MessageTraits specialization, pushed through the wire half of the static
// audit (the check src/runtime/static_audit.cpp runs for every entry of
// ANONET_CORE_AGENT_LIST): wire::WireEncodable fails and the named
// static_assert ("no complete MessageTraits specialization") fires. Delete
// any codec from wire/codecs.hpp and the library itself dies the same way.

#include <cstdint>
#include <vector>

#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"
#include "wire/codecs.hpp"

namespace {

class CodeclessAgent {
 public:
  struct Message {
    std::int64_t value;
  };

  static constexpr bool kParallelSafe = true;
  static constexpr anonet::ModelCapabilities kModelCapabilities =
      anonet::ModelCapabilities::kNone;

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
  }

 private:
  std::int64_t value_ = 0;
};

// The same obligation static_audit.cpp imposes on every registered agent —
// spelled directly so this TU does not need to re-expand the X-macro list.
template <typename A>
constexpr bool audit_wire() {
  static_assert(anonet::wire::WireEncodable<typename A::Message>,
                "no complete MessageTraits specialization for this Message");
  return true;
}

static_assert(audit_wire<CodeclessAgent>(),
              "wire audit failed for CodeclessAgent");

}  // namespace

int main() { return 0; }
