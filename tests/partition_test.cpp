// Tests for in-stable partition refinement (fibration/partition.hpp).

#include "fibration/partition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace anonet {
namespace {

TEST(Partition, DenseLabels) {
  int count = 0;
  EXPECT_EQ(dense_labels({7, 7, 3, 7, 3}, &count),
            (std::vector<int>{0, 0, 1, 0, 1}));
  EXPECT_EQ(count, 2);
}

TEST(Partition, CombineLabels) {
  const std::vector<int> a{0, 0, 1, 1};
  const std::vector<int> b{0, 1, 0, 1};
  const std::vector<int> combined = combine_labels(a, b);
  EXPECT_EQ(combined[0], combined[0]);
  // All four pairs distinct.
  EXPECT_NE(combined[0], combined[1]);
  EXPECT_NE(combined[0], combined[2]);
  EXPECT_NE(combined[0], combined[3]);
  EXPECT_NE(combined[1], combined[2]);
  EXPECT_THROW(combine_labels({1}, {1, 2}), std::invalid_argument);
}

TEST(Partition, UniformRingCollapsesToOneClass) {
  const Digraph g = directed_ring(6);
  const auto result =
      coarsest_in_stable_partition(g, std::vector<int>(6, 0));
  EXPECT_EQ(result.partition.class_count, 1);
}

TEST(Partition, ValuesSplitTheRing) {
  // Alternating values on an even ring: two classes (odd/even positions).
  const Digraph g = directed_ring(6);
  const auto result =
      coarsest_in_stable_partition(g, std::vector<int>{0, 1, 0, 1, 0, 1});
  EXPECT_EQ(result.partition.class_count, 2);
  EXPECT_EQ(result.partition.class_sizes(), (std::vector<int>{3, 3}));
}

TEST(Partition, AsymmetricValuePlacementRefinesFully) {
  // One distinguished vertex on a directed ring makes everyone distinct
  // (distance to the leader is an invariant the refinement discovers).
  const Digraph g = directed_ring(5);
  const auto result =
      coarsest_in_stable_partition(g, std::vector<int>{1, 0, 0, 0, 0});
  EXPECT_EQ(result.partition.class_count, 5);
}

TEST(Partition, RefinementRespectsInMultiplicity) {
  // Two vertices with the same value but different in-multiplicity from the
  // same class must split.
  Digraph g(3);
  g.ensure_self_loops();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 2);  // double edge into 2
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  const auto result =
      coarsest_in_stable_partition(g, std::vector<int>{0, 1, 1});
  EXPECT_EQ(result.partition.class_count, 3);
}

TEST(Partition, EdgeColorsRefine) {
  // Identical topology, but colors distinguish the two in-edges.
  Digraph plain(3);
  plain.ensure_self_loops();
  plain.add_edge(0, 1);
  plain.add_edge(0, 2);
  plain.add_edge(1, 0);
  plain.add_edge(2, 0);
  Digraph colored = plain;
  const auto plain_result =
      coarsest_in_stable_partition(plain, std::vector<int>(3, 0));
  // 1 and 2 are in-similar in the plain graph.
  EXPECT_EQ(plain_result.partition.class_of[1],
            plain_result.partition.class_of[2]);

  Digraph g(3);
  g.ensure_self_loops();
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);  // different port
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  const auto colored_result =
      coarsest_in_stable_partition(g, std::vector<int>(3, 0));
  EXPECT_NE(colored_result.partition.class_of[1],
            colored_result.partition.class_of[2]);
}

TEST(Partition, RoundsBoundedByClassGrowth) {
  const Digraph g = directed_ring(8);
  const auto result =
      coarsest_in_stable_partition(g, std::vector<int>{1, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(result.partition.class_count, 8);
  EXPECT_LE(result.rounds, 8);
}

TEST(Partition, LabelSizeMismatchThrows) {
  EXPECT_THROW(
      coarsest_in_stable_partition(directed_ring(3), std::vector<int>(2, 0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace anonet
