// Tests for the graph generators, in particular that lifts really are
// fibrations (the property every Section 4.1 argument rests on).

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "fibration/fibration.hpp"
#include "graph/analysis.hpp"

namespace anonet {
namespace {

TEST(Generators, DirectedRingShape) {
  const Digraph g = directed_ring(5);
  EXPECT_TRUE(g.has_all_self_loops());
  EXPECT_TRUE(is_strongly_connected(g));
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(g.outdegree(v), 2);  // self + successor
    EXPECT_TRUE(g.has_edge(v, (v + 1) % 5));
  }
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Generators, BidirectionalRingIsSymmetric) {
  for (Vertex n : {1, 2, 3, 4, 9}) {
    const Digraph g = bidirectional_ring(n);
    EXPECT_TRUE(g.has_all_self_loops()) << n;
    EXPECT_TRUE(g.is_symmetric()) << n;
    EXPECT_TRUE(is_strongly_connected(g)) << n;
  }
  EXPECT_EQ(bidirectional_ring(4).outdegree(0), 3);  // self + two neighbors
}

TEST(Generators, CompleteGraph) {
  const Digraph g = complete_graph(4);
  EXPECT_EQ(g.edge_count(), 16);
  EXPECT_TRUE(is_complete_with_self_loops(g));
  EXPECT_EQ(diameter(g), 1);
}

TEST(Generators, TorusIsSymmetricAndConnected) {
  const Digraph g = torus(3, 4);
  EXPECT_EQ(g.vertex_count(), 12);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_TRUE(g.has_all_self_loops());
}

TEST(Generators, Hypercube) {
  const Digraph g = hypercube(3);
  EXPECT_EQ(g.vertex_count(), 8);
  EXPECT_TRUE(g.is_symmetric());
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(g.outdegree(v), 4);  // self + 3
  EXPECT_EQ(diameter(g), 3);
}

TEST(Generators, DeBruijnIsStronglyConnectedAsymmetric) {
  const Digraph g = de_bruijn(2, 3);
  EXPECT_EQ(g.vertex_count(), 8);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_TRUE(g.has_all_self_loops());
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Generators, RandomStronglyConnectedAlwaysIs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Digraph g = random_strongly_connected(9, 6, seed);
    EXPECT_TRUE(is_strongly_connected(g)) << seed;
    EXPECT_TRUE(g.has_all_self_loops()) << seed;
  }
}

TEST(Generators, RandomSymmetricConnectedAlwaysIs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Digraph g = random_symmetric_connected(9, 4, seed);
    EXPECT_TRUE(is_strongly_connected(g)) << seed;
    EXPECT_TRUE(g.is_symmetric()) << seed;
    EXPECT_TRUE(g.has_all_self_loops()) << seed;
  }
}

TEST(Generators, RandomLiftIsAFibration) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Digraph base = random_strongly_connected(4, 3, seed + 100);
    const std::vector<int> fibre_sizes{2, 3, 1, 2};
    const LiftedGraph lift = random_lift(base, fibre_sizes, seed);
    EXPECT_EQ(lift.graph.vertex_count(), 8);
    EXPECT_TRUE(is_fibration(lift.graph, base, lift.projection)) << seed;
    EXPECT_TRUE(lift.graph.has_all_self_loops()) << seed;
  }
}

TEST(Generators, RandomLiftFibreSizes) {
  const Digraph base = directed_ring(3);
  const LiftedGraph lift = random_lift(base, {2, 2, 2}, 5);
  EXPECT_EQ(fibre_sizes(lift.projection, 3), (std::vector<int>{2, 2, 2}));
}

TEST(Generators, RandomCoveringLiftIsAFibrationWithEqualFibres) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Digraph base = random_strongly_connected(4, 4, seed + 7);
    base.assign_output_ports();
    const LiftedGraph lift = random_covering_lift(base, 3, seed);
    EXPECT_TRUE(is_fibration(lift.graph, base, lift.projection)) << seed;
    // Covering: out-neighborhoods biject, so the lifted port labels remain a
    // valid local output labelling.
    for (Vertex v = 0; v < lift.graph.vertex_count(); ++v) {
      std::vector<int> ports;
      for (EdgeId id : lift.graph.out_edges(v)) {
        ports.push_back(static_cast<int>(lift.graph.edge(id).color));
      }
      std::sort(ports.begin(), ports.end());
      for (std::size_t k = 0; k < ports.size(); ++k) {
        EXPECT_EQ(ports[k], static_cast<int>(k) + 1) << seed << " v=" << v;
      }
    }
  }
}

TEST(Generators, RingFibrationProjectsModP) {
  const LiftedGraph lift = ring_fibration(12, 4);
  EXPECT_TRUE(is_fibration(lift.graph, bidirectional_ring(4),
                           lift.projection));
  EXPECT_THROW(ring_fibration(10, 4), std::invalid_argument);
}

TEST(Generators, InvalidArguments) {
  EXPECT_THROW(directed_ring(0), std::invalid_argument);
  EXPECT_THROW(de_bruijn(1, 2), std::invalid_argument);
  EXPECT_THROW(random_lift(directed_ring(2), {1}, 0), std::invalid_argument);
  EXPECT_THROW(random_lift(directed_ring(2), {1, 0}, 0),
               std::invalid_argument);
  EXPECT_THROW(random_covering_lift(directed_ring(2), 0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace anonet
