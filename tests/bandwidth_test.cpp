// Tests for channel policies and the bandwidth meter (wire/meter.hpp) as
// enforced by the Executor: metering accuracy against hand-measured
// messages, the bounded-channel failure contract, and thread-count
// invariance of the metered series (the "Determin" suites run under TSan in
// scripts/check.sh).

#include "wire/meter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/gossip.hpp"
#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"
#include "wire/codecs.hpp"

namespace anonet {
namespace {

TEST(Bandwidth, ChannelPolicyFromBitsConvention) {
  EXPECT_EQ(wire::channel_policy_from_bits(0).mode,
            wire::ChannelMode::kUnbounded);
  EXPECT_EQ(wire::channel_policy_from_bits(-1).mode,
            wire::ChannelMode::kMetered);
  const wire::ChannelPolicy bounded = wire::channel_policy_from_bits(96);
  EXPECT_EQ(bounded.mode, wire::ChannelMode::kBounded);
  EXPECT_EQ(bounded.budget_bits, 96);
  EXPECT_THROW((void)wire::channel_policy_from_bits(-2),
               std::invalid_argument);
}

TEST(Bandwidth, MeterIsOffByDefault) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<SetGossipAgent> agents;
  for (int i = 0; i < 4; ++i) agents.emplace_back(i);
  Executor<SetGossipAgent> exec(net, std::move(agents),
                                CommModel::kSimpleBroadcast);
  exec.run(3);
  EXPECT_EQ(exec.channel_policy().mode, wire::ChannelMode::kUnbounded);
  EXPECT_EQ(exec.bandwidth_meter().rounds(), 0);
  EXPECT_EQ(exec.bandwidth_meter().total_bits_sent(), 0);
}

TEST(Bandwidth, MeteredBitsMatchHandMeasuredMessages) {
  // n = 2 bidirectional ring: each sender covers two out-edges (self-loop
  // plus the neighbor), so round-1 traffic is exactly 2x each initial
  // known-set snapshot.
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(2));
  std::vector<SetGossipAgent> agents;
  agents.emplace_back(3);
  agents.emplace_back(-7);
  Executor<SetGossipAgent> exec(net, std::move(agents),
                                CommModel::kSimpleBroadcast);
  exec.set_channel_policy(wire::ChannelPolicy::metered());
  exec.step();
  SetGossipAgent::Message first{{3}};
  SetGossipAgent::Message second{{-7}};
  const std::int64_t expected =
      2 * wire::encoded_bits(first) + 2 * wire::encoded_bits(second);
  const wire::RoundBandwidth& round = exec.bandwidth_meter().round(1);
  EXPECT_EQ(round.bits_sent, expected);
  EXPECT_EQ(round.bits_received, expected);
  EXPECT_EQ(round.max_message_bits,
            std::max(wire::encoded_bits(first), wire::encoded_bits(second)));
  // Round 2: both know {-7, 3}; two values, same message from both.
  exec.step();
  SetGossipAgent::Message merged{{-7, 3}};
  EXPECT_EQ(exec.bandwidth_meter().round(2).bits_sent,
            4 * wire::encoded_bits(merged));
  EXPECT_EQ(exec.bandwidth_meter().total_bits_sent(),
            expected + 4 * wire::encoded_bits(merged));
}

TEST(Bandwidth, SentEqualsReceivedEveryRound) {
  auto net = std::make_shared<RandomStronglyConnectedSchedule>(12, 8, 21);
  std::vector<FrequencyPushSumAgent> agents;
  for (Vertex v = 0; v < 12; ++v) agents.emplace_back(v % 4);
  Executor<FrequencyPushSumAgent> exec(net, std::move(agents),
                                       CommModel::kOutdegreeAware);
  exec.set_channel_policy(wire::ChannelPolicy::metered());
  exec.run(6);
  const wire::BandwidthMeter& meter = exec.bandwidth_meter();
  ASSERT_EQ(meter.rounds(), 6);
  std::int64_t sent = 0, received = 0;
  for (const wire::RoundBandwidth& round : meter.per_round()) {
    EXPECT_GT(round.bits_sent, 0);
    EXPECT_EQ(round.bits_sent, round.bits_received);
    EXPECT_GT(round.max_message_bits, 0);
    EXPECT_LE(round.max_message_bits, round.bits_sent);
    sent += round.bits_sent;
    received += round.bits_received;
  }
  EXPECT_EQ(meter.total_bits_sent(), sent);
  EXPECT_EQ(meter.total_bits_received(), received);
  EXPECT_THROW((void)meter.round(0), std::out_of_range);
  EXPECT_THROW((void)meter.round(7), std::out_of_range);
}

TEST(Bandwidth, BoundedChannelThrowsBetweenSendAndDelivery) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(3));
  std::vector<SetGossipAgent> agents;
  for (int i = 0; i < 3; ++i) agents.emplace_back(1000 * i);
  Executor<SetGossipAgent> exec(net, std::move(agents),
                                CommModel::kSimpleBroadcast);
  // Every round-1 message carries one value: count + first key. Budget one
  // bit under the largest message, so round 1 itself trips the channel.
  SetGossipAgent::Message largest{{2000}};
  const std::int64_t budget = wire::encoded_bits(largest) - 1;
  exec.set_channel_policy(wire::ChannelPolicy::bounded(budget));
  try {
    exec.step();
    FAIL() << "expected wire::BandwidthExceeded";
  } catch (const wire::BandwidthExceeded& e) {
    EXPECT_EQ(e.rounds_run(), 0);
    EXPECT_EQ(e.budget_bits(), budget);
    EXPECT_EQ(e.message_bits(), wire::encoded_bits(largest));
  }
  // The round did not happen: no transition, no meter entry, and the
  // agents' known sets are still their singletons.
  EXPECT_EQ(exec.round(), 0);
  EXPECT_EQ(exec.stats().messages_delivered, 0);
  EXPECT_EQ(exec.bandwidth_meter().rounds(), 0);
  EXPECT_EQ(exec.agent(0).known().size(), 1u);
}

TEST(Bandwidth, BoundedChannelAdmitsFittingMessages) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(3));
  std::vector<SetGossipAgent> agents;
  for (int i = 0; i < 3; ++i) agents.emplace_back(i);
  Executor<SetGossipAgent> exec(net, std::move(agents),
                                CommModel::kSimpleBroadcast);
  // Generous budget: the channel behaves as a meter that also checks.
  exec.set_channel_policy(wire::ChannelPolicy::bounded(1 << 16));
  EXPECT_NO_THROW(exec.run(4));
  EXPECT_EQ(exec.bandwidth_meter().rounds(), 4);
  EXPECT_EQ(exec.channel_policy().mode, wire::ChannelMode::kBounded);
}

TEST(Bandwidth, BoundedPolicyValidatesItsBudget) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(3));
  std::vector<SetGossipAgent> agents;
  for (int i = 0; i < 3; ++i) agents.emplace_back(i);
  Executor<SetGossipAgent> exec(net, std::move(agents),
                                CommModel::kSimpleBroadcast);
  EXPECT_THROW(exec.set_channel_policy(wire::ChannelPolicy::bounded(0)),
               std::invalid_argument);
  EXPECT_THROW(exec.set_channel_policy(wire::ChannelPolicy::bounded(-4)),
               std::invalid_argument);
}

TEST(Bandwidth, MeterJsonlEmitsOneRecordPerRound) {
  wire::BandwidthMeter meter;
  meter.record_round({100, 100, 24});
  meter.record_round({160, 160, 32});
  const std::string jsonl = meter.to_jsonl();
  EXPECT_NE(jsonl.find("\"round\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"round\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"bits_sent\":160"), std::string::npos);
  EXPECT_NE(jsonl.find("\"max_message_bits\":32"), std::string::npos);
}

// --- thread-count invariance (runs under TSan via scripts/check.sh) ----------

TEST(BandwidthDeterminism, MeteredSeriesIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    auto net = std::make_shared<RandomStronglyConnectedSchedule>(23, 14, 5);
    std::vector<FrequencyPushSumAgent> agents;
    for (Vertex v = 0; v < 23; ++v) agents.emplace_back(v % 5);
    Executor<FrequencyPushSumAgent> exec(net, std::move(agents),
                                         CommModel::kOutdegreeAware, 0x5eedull,
                                         threads);
    exec.set_channel_policy(wire::ChannelPolicy::metered());
    exec.run(8);
    return exec;
  };
  const auto reference = run(1);
  for (int threads : {2, 4}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.bandwidth_meter().rounds(),
              reference.bandwidth_meter().rounds());
    for (std::int64_t t = 1; t <= reference.bandwidth_meter().rounds(); ++t) {
      const wire::RoundBandwidth& a = reference.bandwidth_meter().round(t);
      const wire::RoundBandwidth& b = parallel.bandwidth_meter().round(t);
      EXPECT_EQ(a.bits_sent, b.bits_sent) << "round " << t;
      EXPECT_EQ(a.bits_received, b.bits_received) << "round " << t;
      EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "round " << t;
    }
    EXPECT_EQ(parallel.bandwidth_meter().total_bits_sent(),
              reference.bandwidth_meter().total_bits_sent());
    EXPECT_EQ(parallel.bandwidth_meter().max_message_bits(),
              reference.bandwidth_meter().max_message_bits());
  }
}

TEST(BandwidthDeterminism, BoundedOverflowDetectedAtAnyThreadCount) {
  for (int threads : {1, 3}) {
    auto net = std::make_shared<StaticSchedule>(complete_graph(6));
    std::vector<SetGossipAgent> agents;
    for (int i = 0; i < 6; ++i) agents.emplace_back(i * 77);
    Executor<SetGossipAgent> exec(net, std::move(agents),
                                  CommModel::kSimpleBroadcast, 0x5eedull,
                                  threads);
    // Round 1 fits (singleton sets); round 2's merged sets do not.
    exec.set_channel_policy(wire::ChannelPolicy::bounded(40));
    EXPECT_NO_THROW(exec.step()) << threads;
    EXPECT_THROW(exec.step(), wire::BandwidthExceeded) << threads;
    EXPECT_EQ(exec.round(), 1) << threads;
    EXPECT_EQ(exec.bandwidth_meter().rounds(), 1) << threads;
  }
}

}  // namespace
}  // namespace anonet
