// Socket transport tests (src/net/, docs/transport.md): frame integrity
// under corruption and truncation, protocol payload round-trips, handshake
// rejection, agent MESSAGE frames routed through MessageTraits, and —
// through real loopback sockets — coordinator/worker campaign parity with
// the in-process Runner, including a worker killed mid-campaign.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/metrics.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "core/gossip.hpp"
#include "core/pushsum.hpp"
#include "net/coordinator.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/worker.hpp"
#include "wire/codecs.hpp"

namespace {

using namespace anonet;
using namespace anonet::net;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "anonet_net_" + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Frame sample_frame() {
  Frame frame;
  frame.type = FrameType::kVerdict;
  frame.payload = {0x01, 0x02, 0xFF, 0x00, 0x7E, 0x41};
  return frame;
}

// --- frame layer ----------------------------------------------------------

TEST(NetFrame, RoundTripsEveryTypeThroughTheDecoder) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kWelcome, FrameType::kAssign,
        FrameType::kRoundBarrier, FrameType::kVerdict, FrameType::kShutdown,
        FrameType::kMessage}) {
    Frame frame;
    frame.type = type;
    if (type != FrameType::kShutdown) {
      frame.payload = {0xAB, 0xCD, static_cast<std::uint8_t>(type)};
    }
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    const auto decoded = decoder.next();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
    EXPECT_EQ(decoder.buffered(), 0u);
    EXPECT_FALSE(decoder.next().has_value());
  }
}

TEST(NetFrame, ReassemblesFramesFedOneByteAtATime) {
  const Frame first = sample_frame();
  Frame second;
  second.type = FrameType::kAssign;
  second.payload = std::vector<std::uint8_t>(100, 0x5A);
  std::vector<std::uint8_t> stream = encode_frame(first);
  const std::vector<std::uint8_t> tail = encode_frame(second);
  stream.insert(stream.end(), tail.begin(), tail.end());

  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) seen.push_back(std::move(*frame));
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], first);
  EXPECT_EQ(seen[1], second);
}

// Every truncated prefix is "incomplete", never a frame and never UB.
TEST(NetFrame, TruncatedPrefixesYieldNoFrame) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(bytes.data(), cut);
    EXPECT_FALSE(decoder.next().has_value()) << "prefix " << cut;
    EXPECT_EQ(decoder.buffered(), cut);
  }
}

// Every single-byte corruption is caught: the decoder either throws
// FrameError (CRC/length/type damage) or keeps waiting (length grew) — it
// never hands back a frame.
TEST(NetFrame, EveryByteFlipIsCaughtNeverDecoded) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder decoder;
      decoder.feed(corrupt.data(), corrupt.size());
      try {
        const auto frame = decoder.next();
        EXPECT_FALSE(frame.has_value())
            << "byte " << i << " bit " << bit << " decoded a corrupt frame";
      } catch (const FrameError&) {
        // the loud, correct outcome
      }
    }
  }
}

TEST(NetFrame, RejectsOversizedDeclaredLengthBeforeBuffering) {
  // Hand-build a header declaring a payload far over the cap; the decoder
  // must throw on the header alone, without waiting for (or allocating)
  // the declared gigabytes.
  const std::uint32_t huge = (1u << 28);
  const std::vector<std::uint8_t> header = {
      static_cast<std::uint8_t>(huge), static_cast<std::uint8_t>(huge >> 8),
      static_cast<std::uint8_t>(huge >> 16),
      static_cast<std::uint8_t>(huge >> 24)};
  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  EXPECT_THROW((void)decoder.next(), FrameError);
}

TEST(NetFrame, RejectsPayloadOverCapOnEncode) {
  Frame frame;
  frame.type = FrameType::kMessage;
  frame.payload.resize(kMaxFramePayload + 1);
  EXPECT_THROW((void)encode_frame(frame), FrameError);
}

// --- protocol payloads ----------------------------------------------------

TEST(NetProtocol, ControlPayloadsRoundTrip) {
  HelloPayload hello;
  hello.window = 7;
  EXPECT_EQ(decode_hello(encode_hello(hello)), hello);

  WelcomePayload welcome;
  welcome.grid = "smoke";
  welcome.include_timings = true;
  welcome.bandwidth_bits = -1;
  welcome.cell_timeout_ms = 1500.5;
  EXPECT_EQ(decode_welcome(encode_welcome(welcome)), welcome);

  AssignPayload assign;
  assign.epoch = 3;
  assign.cell_index = 41;
  assign.key = "smoke/auto/SB/none/max/static_panel/n5/v0/s1";
  EXPECT_EQ(decode_assign(encode_assign(assign)), assign);

  BarrierPayload barrier;
  barrier.epoch = 9;
  barrier.pending = 12;
  EXPECT_EQ(decode_barrier(encode_barrier(barrier)), barrier);

  VerdictPayload verdict;
  verdict.epoch = 2;
  verdict.cell_index = 5;
  verdict.key = "k";
  verdict.line = R"({"cell":5,"verdict":"ok"})";
  EXPECT_EQ(decode_verdict(encode_verdict(verdict)), verdict);

  EXPECT_NO_THROW(decode_shutdown(encode_shutdown()));
}

TEST(NetProtocol, DecodersRejectTypeMismatchAndTrailingBytes) {
  EXPECT_THROW((void)decode_hello(encode_shutdown()), FrameError);
  EXPECT_THROW((void)decode_assign(encode_barrier(BarrierPayload{})),
               FrameError);
  Frame hello = encode_hello(HelloPayload{});
  hello.payload.push_back(0x00);  // a whole trailing byte = skewed peer
  EXPECT_THROW((void)decode_hello(hello), FrameError);
  Frame truncated = encode_welcome(WelcomePayload{});
  truncated.payload.pop_back();
  EXPECT_THROW((void)decode_welcome(truncated), FrameError);
}

TEST(NetProtocol, HelloWithWrongMagicIsRejected) {
  wire::BitWriter writer;
  writer.write_uvarint(0xBADC0DE);
  writer.write_uvarint(kProtocolVersion);
  writer.write_uvarint(1);
  const Frame impostor{FrameType::kHello, writer.bytes()};
  EXPECT_THROW((void)decode_hello(impostor), FrameError);
}

TEST(NetProtocol, AgentMessageFramesRouteThroughMessageTraits) {
  SetGossipAgent::Message gossip;
  gossip.values = {-3, 0, 41};
  const Frame gossip_frame = make_message_frame(gossip);
  EXPECT_EQ(gossip_frame.type, FrameType::kMessage);
  EXPECT_EQ(parse_message_frame<SetGossipAgent::Message>(gossip_frame).values,
            gossip.values);

  FrequencyPushSumAgent::Message push;
  push.keys = {7};
  push.ys = {0.25};
  push.zs = {0.5};
  push.outdegree = 2;
  const Frame push_frame = make_message_frame(push);
  const auto decoded =
      parse_message_frame<FrequencyPushSumAgent::Message>(push_frame);
  ASSERT_EQ(decoded.keys, push.keys);
  EXPECT_EQ(decoded.ys, push.ys);
  EXPECT_EQ(decoded.zs, push.zs);
  EXPECT_EQ(decoded.outdegree, push.outdegree);
}

TEST(NetProtocol, MessageFrameWithCorruptBitCountIsAFrameError) {
  SetGossipAgent::Message gossip;
  gossip.values = {1, 2};
  Frame frame = make_message_frame(gossip);
  // Forge the declared bit count (first uvarint byte) far past the frame.
  frame.payload[0] = 0xFF;
  frame.payload.insert(frame.payload.begin() + 1, 0x7F);
  EXPECT_THROW((void)parse_message_frame<SetGossipAgent::Message>(frame),
               FrameError);
  Frame wrong_type = frame;
  wrong_type.type = FrameType::kAssign;
  EXPECT_THROW(
      (void)parse_message_frame<SetGossipAgent::Message>(wrong_type),
      FrameError);
}

// --- sockets --------------------------------------------------------------

TEST(NetSocket, FramesCrossALoopbackSocketIntact) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  const Frame sent = sample_frame();
  std::thread client([port = listener.port(), &sent] {
    TcpSocket socket = connect_tcp("127.0.0.1", port);
    write_frame(socket, sent);
  });
  TcpSocket accepted = listener.accept();
  FrameDecoder decoder;
  const auto received = read_frame(accepted, decoder);
  client.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, sent);
  // After the client exits, the stream ends cleanly at a frame boundary.
  EXPECT_FALSE(read_frame(accepted, decoder).has_value());
}

TEST(NetSocket, PeerDyingMidFrameIsAFrameError) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  std::thread client([port = listener.port()] {
    TcpSocket socket = connect_tcp("127.0.0.1", port);
    const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
    socket.write_all(bytes.data(), bytes.size() / 2);  // half a frame, die
  });
  TcpSocket accepted = listener.accept();
  FrameDecoder decoder;
  EXPECT_THROW((void)read_frame(accepted, decoder), FrameError);
  client.join();
}

// --- distributed campaign parity ------------------------------------------

std::vector<campaign::CellRecord> reference_records(
    const std::string& out_path) {
  campaign::RunnerOptions options;
  options.out_path = out_path;
  const campaign::Runner runner(options);
  return runner.run(campaign::Grid::preset("smoke"));
}

void expect_same_records(const std::vector<campaign::CellRecord>& got,
                         const std::vector<campaign::CellRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(campaign::MetricsSink::to_json(got[i], false),
              campaign::MetricsSink::to_json(want[i], false))
        << "record " << i;
  }
}

// "Determin" in the suite name opts these multi-threaded socket tests into
// the TSan CI shard (see .github/workflows/ci.yml).
TEST(NetDeterminism, DistributedSmokeRunMatchesInProcessRunByteForByte) {
  const std::string ref_path = temp_path("parity_ref.jsonl");
  std::remove(ref_path.c_str());
  const std::vector<campaign::CellRecord> want = reference_records(ref_path);
  const std::string ref_bytes = read_bytes(ref_path);
  ASSERT_FALSE(ref_bytes.empty());

  for (const int workers : {1, 2, 4}) {
    const std::string out_path =
        temp_path("parity_w" + std::to_string(workers) + ".jsonl");
    std::remove(out_path.c_str());
    CoordinatorOptions options;
    options.grid = "smoke";
    options.workers = workers;
    options.out_path = out_path;
    Coordinator coordinator(options);
    const std::uint16_t port = coordinator.listen();

    std::vector<std::thread> nodes;
    nodes.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      nodes.emplace_back([port] {
        WorkerOptions worker_options;
        worker_options.port = port;
        WorkerNode worker(worker_options);
        EXPECT_TRUE(worker.run());
      });
    }
    const std::vector<campaign::CellRecord> got = coordinator.run();
    for (std::thread& node : nodes) node.join();

    expect_same_records(got, want);
    EXPECT_EQ(read_bytes(out_path), ref_bytes) << workers << " workers";
    EXPECT_EQ(coordinator.stats().workers_joined, workers);
    EXPECT_EQ(coordinator.stats().cells_reassigned, 0);
    std::remove(out_path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(NetDeterminism, WorkerDisconnectReassignsItsCellExactlyOnce) {
  const std::string ref_path = temp_path("kill_ref.jsonl");
  std::remove(ref_path.c_str());
  const std::vector<campaign::CellRecord> want = reference_records(ref_path);
  const std::string ref_bytes = read_bytes(ref_path);

  const std::string out_path = temp_path("kill_out.jsonl");
  std::remove(out_path.c_str());
  CoordinatorOptions options;
  options.grid = "smoke";
  options.workers = 2;
  options.out_path = out_path;
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.listen();

  std::thread deserter([port] {
    WorkerOptions worker_options;
    worker_options.port = port;
    worker_options.abandon_after = 1;  // one verdict, then die on assign #2
    WorkerNode worker(worker_options);
    EXPECT_FALSE(worker.run());
    EXPECT_EQ(worker.stats().cells_run, 1);
  });
  std::thread survivor([port] {
    WorkerOptions worker_options;
    worker_options.port = port;
    WorkerNode worker(worker_options);
    EXPECT_TRUE(worker.run());
    // Its final barrier epoch reflects the reassignment wave.
    EXPECT_EQ(worker.stats().epoch, 2u);
  });
  const std::vector<campaign::CellRecord> got = coordinator.run();
  deserter.join();
  survivor.join();

  const CoordinatorStats& stats = coordinator.stats();
  EXPECT_EQ(stats.workers_joined, 2);
  EXPECT_EQ(stats.workers_lost, 1);
  EXPECT_EQ(stats.cells_reassigned, 1);  // exactly the abandoned cell
  EXPECT_EQ(stats.duplicate_verdicts, 0);
  EXPECT_EQ(stats.epochs, 2u);
  EXPECT_EQ(stats.verdicts, static_cast<std::int64_t>(want.size()));

  expect_same_records(got, want);
  EXPECT_EQ(read_bytes(out_path), ref_bytes);
  std::remove(out_path.c_str());
  std::remove(ref_path.c_str());
}

TEST(NetDeterminism, ReplacementJoinerIsFedAfterAReapWithoutAVerdict) {
  // Regression: assignment used to be driven only by verdict and HELLO
  // frames. A worker that grabbed the whole queue into its window and then
  // died left the reclaimed cells stranded — a replacement that had greeted
  // while the queue was empty had no verdict to send, so nothing ever
  // assigned it the returned work and the campaign hung with cells queued
  // and every worker idle. The coordinator now demand-feeds idle workers
  // after each reap; under the old behavior this test hangs.
  const std::string ref_path = temp_path("replacement_ref.jsonl");
  std::remove(ref_path.c_str());
  const std::vector<campaign::CellRecord> want = reference_records(ref_path);
  const std::string ref_bytes = read_bytes(ref_path);

  const std::string out_path = temp_path("replacement_out.jsonl");
  std::remove(out_path.c_str());
  CoordinatorOptions options;
  options.grid = "smoke";
  options.workers = 2;
  options.out_path = out_path;
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.listen();

  // The victim: a scripted peer whose window swallows the entire smoke
  // grid and which dies without producing a single verdict.
  TcpSocket victim = connect_tcp("127.0.0.1", port);
  FrameDecoder victim_decoder;
  std::thread victim_script([&victim, &victim_decoder, port] {
    wire::BitWriter writer;
    writer.write_uvarint(kMagic);
    writer.write_uvarint(kProtocolVersion);
    writer.write_uvarint(16);  // window >= the whole smoke grid
    write_frame(victim, Frame{FrameType::kHello, writer.bytes()});
    // Greeted first: the WELCOME comes back before anyone else can join,
    // so the kickoff pass reaches this peer (and its giant window) first.
    std::optional<Frame> frame = read_frame(victim, victim_decoder);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, FrameType::kWelcome);

    std::thread replacement([port] {
      WorkerOptions worker_options;
      worker_options.port = port;
      WorkerNode worker(worker_options);
      EXPECT_TRUE(worker.run());
      // Greeted with an empty queue, then fed every reclaimed cell.
      EXPECT_EQ(worker.stats().cells_run, 8);
    });

    // Absorb the kickoff (BARRIER plus the 8 ASSIGNs aimed at our
    // window), then die without a verdict.
    int assigns = 0;
    while (assigns < 8) {
      std::optional<Frame> f = read_frame(victim, victim_decoder);
      ASSERT_TRUE(f.has_value());
      if (f->type == FrameType::kAssign) ++assigns;
    }
    victim.close();
    replacement.join();
  });

  const std::vector<campaign::CellRecord> got = coordinator.run();
  victim_script.join();

  const CoordinatorStats& stats = coordinator.stats();
  EXPECT_EQ(stats.workers_joined, 2);
  EXPECT_EQ(stats.workers_lost, 1);
  EXPECT_EQ(stats.cells_reassigned, 8);
  EXPECT_EQ(stats.verdicts, 8);
  EXPECT_EQ(stats.duplicate_verdicts, 0);
  expect_same_records(got, want);
  EXPECT_EQ(read_bytes(out_path), ref_bytes);
  std::remove(out_path.c_str());
  std::remove(ref_path.c_str());
}

TEST(NetDeterminism, CoordinatorResumesFinishedCellsWithoutWorkersRedoing) {
  const std::string out_path = temp_path("resume_out.jsonl");
  std::remove(out_path.c_str());
  // First pass: complete the whole grid distributed.
  {
    CoordinatorOptions options;
    options.grid = "smoke";
    options.workers = 1;
    options.out_path = out_path;
    Coordinator coordinator(options);
    const std::uint16_t port = coordinator.listen();
    std::thread node([port] {
      WorkerOptions worker_options;
      worker_options.port = port;
      WorkerNode worker(worker_options);
      EXPECT_TRUE(worker.run());
    });
    (void)coordinator.run();
    node.join();
  }
  const std::string first_bytes = read_bytes(out_path);
  // Second pass resumes: every cell is already finished, so the worker is
  // greeted, fenced, and shut down without running anything.
  CoordinatorOptions options;
  options.grid = "smoke";
  options.workers = 1;
  options.out_path = out_path;
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.listen();
  std::thread node([port] {
    WorkerOptions worker_options;
    worker_options.port = port;
    WorkerNode worker(worker_options);
    EXPECT_TRUE(worker.run());
    EXPECT_EQ(worker.stats().cells_run, 0);
  });
  (void)coordinator.run();
  node.join();
  EXPECT_EQ(coordinator.stats().cells_assigned, 0);
  EXPECT_EQ(read_bytes(out_path), first_bytes);
  std::remove(out_path.c_str());
}

TEST(NetDeterminism, VersionSkewedWorkerIsRejectedAtTheHandshake) {
  CoordinatorOptions options;
  options.grid = "smoke";
  options.workers = 1;
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.listen();

  std::thread impostor([port] {
    // Speak the frame layer but a future protocol version: the coordinator
    // must drop us without a WELCOME.
    TcpSocket socket = connect_tcp("127.0.0.1", port);
    wire::BitWriter writer;
    writer.write_uvarint(kMagic);
    writer.write_uvarint(kProtocolVersion + 1);
    writer.write_uvarint(1);
    write_frame(socket, Frame{FrameType::kHello, writer.bytes()});
    FrameDecoder decoder;
    EXPECT_FALSE(read_frame(socket, decoder).has_value());  // dropped: EOF
  });
  std::thread genuine([port] {
    WorkerOptions worker_options;
    worker_options.port = port;
    WorkerNode worker(worker_options);
    EXPECT_TRUE(worker.run());
  });
  (void)coordinator.run();
  impostor.join();
  genuine.join();
  EXPECT_EQ(coordinator.stats().workers_rejected, 1);
  EXPECT_EQ(coordinator.stats().workers_joined, 1);
}

TEST(NetDeterminism, ParallelWorkerThreadsKeepCellRecordsSerial) {
  // One worker process, four internal threads: between-cell parallelism
  // only, so records still match the serial reference bit for bit.
  const std::string ref_path = temp_path("threads_ref.jsonl");
  std::remove(ref_path.c_str());
  const std::vector<campaign::CellRecord> want = reference_records(ref_path);

  CoordinatorOptions options;
  options.grid = "smoke";
  options.workers = 1;
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.listen();
  std::thread node([port] {
    WorkerOptions worker_options;
    worker_options.port = port;
    worker_options.threads = 4;
    WorkerNode worker(worker_options);
    EXPECT_TRUE(worker.run());
    EXPECT_EQ(worker.stats().cells_run, 8);
  });
  const std::vector<campaign::CellRecord> got = coordinator.run();
  node.join();
  expect_same_records(got, want);
  std::remove(ref_path.c_str());
}

}  // namespace
