// Parameterized property sweeps (TEST_P): the paper's claims checked across
// graph families, sizes, seeds, and communication models.

#include <gtest/gtest.h>

#include <random>

#include "core/computability.hpp"
#include "dynamics/connectivity.hpp"
#include "core/census.hpp"
#include "core/freq_static.hpp"
#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

// --- Sweep 1: static frequency computation across models and graphs ---------

struct StaticCase {
  CommModel model;
  std::uint64_t seed;
};

class StaticFrequencySweep : public ::testing::TestWithParam<StaticCase> {};

TEST_P(StaticFrequencySweep, AverageIsComputedExactly) {
  const auto [model, seed] = GetParam();
  std::mt19937_64 rng(seed);
  const Vertex n = static_cast<Vertex>(5 + seed % 5);
  Digraph g = model == CommModel::kSymmetricBroadcast
                  ? random_symmetric_connected(n, 3, seed)
                  : random_strongly_connected(n, n, seed);
  std::vector<std::int64_t> inputs;
  std::uniform_int_distribution<std::int64_t> dist(0, 3);
  for (Vertex v = 0; v < n; ++v) inputs.push_back(dist(rng));

  Attempt attempt;
  attempt.model = model;
  attempt.knowledge = Knowledge::kNone;
  attempt.rounds = 2 * n + 2 * diameter(g) + 4;
  const AttemptResult result =
      attempt_static(g, inputs, average_function(), attempt);
  EXPECT_TRUE(result.success) << to_string(model) << " seed=" << seed << ": "
                              << result.mechanism;
  EXPECT_EQ(result.final_error, 0.0);
}

TEST_P(StaticFrequencySweep, KnownSizeRecoversTheSum) {
  const auto [model, seed] = GetParam();
  std::mt19937_64 rng(seed * 31 + 7);
  const Vertex n = static_cast<Vertex>(4 + seed % 4);
  Digraph g = model == CommModel::kSymmetricBroadcast
                  ? random_symmetric_connected(n, 2, seed + 100)
                  : random_strongly_connected(n, n, seed + 100);
  std::vector<std::int64_t> inputs;
  std::uniform_int_distribution<std::int64_t> dist(-2, 2);
  for (Vertex v = 0; v < n; ++v) inputs.push_back(dist(rng));

  Attempt attempt;
  attempt.model = model;
  attempt.knowledge = Knowledge::kExactSize;
  attempt.parameter = n;
  attempt.rounds = 2 * n + 2 * diameter(g) + 4;
  const AttemptResult result =
      attempt_static(g, inputs, sum_function(), attempt);
  EXPECT_TRUE(result.success) << to_string(model) << " seed=" << seed << ": "
                              << result.mechanism;
}

std::vector<StaticCase> static_cases() {
  std::vector<StaticCase> cases;
  for (CommModel model :
       {CommModel::kOutdegreeAware, CommModel::kSymmetricBroadcast,
        CommModel::kOutputPortAware}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      cases.push_back({model, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, StaticFrequencySweep, ::testing::ValuesIn(static_cases()),
    [](const ::testing::TestParamInfo<StaticCase>& param_info) {
      std::string name(to_string(param_info.param.model));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(param_info.param.seed);
    });

// --- Sweep 2: Push-Sum invariants across sizes and schedules ----------------

class PushSumSweep : public ::testing::TestWithParam<int> {};

TEST_P(PushSumSweep, FrequencyEstimatesConvergeAndConserveMass) {
  const int n = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(n));
  std::vector<std::int64_t> inputs;
  std::uniform_int_distribution<std::int64_t> dist(0, 2);
  for (int i = 0; i < n; ++i) inputs.push_back(dist(rng));
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(
          n, 2, static_cast<std::uint64_t>(n) * 13),
      std::move(agents), CommModel::kOutdegreeAware);

  exec.run(80 * n);
  const Frequency truth = Frequency::of(inputs);
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& [value, estimate] : exec.agent(v).estimates()) {
      EXPECT_NEAR(estimate, truth.at(value).to_double(), 1e-5)
          << "n=" << n << " v=" << v << " value=" << value;
    }
  }
}

TEST_P(PushSumSweep, RoundingWithBoundStabilizesExactly) {
  const int n = GetParam();
  std::vector<std::int64_t> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(
          n, 3, static_cast<std::uint64_t>(n) * 17),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(80 * n);
  const Frequency truth = Frequency::of(inputs);
  const auto bound = static_cast<std::uint32_t>(n + 3);  // any N >= n
  for (Vertex v = 0; v < n; ++v) {
    const auto rounded = exec.agent(v).rounded_frequency(bound);
    ASSERT_TRUE(rounded.has_value()) << "n=" << n << " v=" << v;
    EXPECT_EQ(*rounded, truth) << "n=" << n << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PushSumSweep, ::testing::Values(2, 3, 5, 8),
                         ::testing::PrintToStringParamName());

// --- Sweep 3: delivery order independence ------------------------------------

class ShuffleSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffleSeedSweep, OutputsAreDeliveryOrderIndependent) {
  // Algorithms receive multisets: reshuffling deliveries (different executor
  // seeds) must not change any output. Run the full static pipeline twice.
  const std::uint64_t shuffle_seed = GetParam();
  const Digraph g = random_symmetric_connected(7, 3, 99);
  const std::vector<std::int64_t> inputs{1, 1, 2, 2, 3, 3, 1};
  Attempt attempt;
  attempt.model = CommModel::kSymmetricBroadcast;
  attempt.knowledge = Knowledge::kExactSize;
  attempt.parameter = 7;
  attempt.rounds = 28;
  attempt.seed = shuffle_seed;
  const AttemptResult result =
      attempt_static(g, inputs, sum_function(), attempt);
  Attempt baseline = attempt;
  baseline.seed = 0xabcdef;
  const AttemptResult reference =
      attempt_static(g, inputs, sum_function(), baseline);
  EXPECT_EQ(result.success, reference.success);
  EXPECT_EQ(result.stabilization_round, reference.stabilization_round);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffleSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         ::testing::PrintToStringParamName());

// --- Sweep 4: dynamic diameter certificates ----------------------------------

class ScheduleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleSweep, EveryExperimentScheduleHasFiniteDynamicDiameter) {
  const int n = GetParam();
  RandomStronglyConnectedSchedule sc(n, 2, 7);
  RandomSymmetricSchedule sym(n, 2, 7);
  TokenRingSchedule token(n);
  EXPECT_GT(dynamic_diameter(sc, 6, n), 0) << "strongly connected";
  EXPECT_GT(dynamic_diameter(sym, 6, n), 0) << "symmetric";
  EXPECT_GT(dynamic_diameter(token, 6, 2 * n * n), 0) << "token ring";
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScheduleSweep, ::testing::Values(3, 5, 8, 12),
                         ::testing::PrintToStringParamName());

// --- Sweep 5: leader counts unlock the multiset everywhere -------------------

class LeaderSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeaderSweep, SumRecoveredStaticAndDynamic) {
  const int leaders = GetParam();
  const std::vector<std::int64_t> values{2, 2, 7, 7, 7, 4};
  std::vector<std::int64_t> inputs;
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(
        encode_leader_input(values[i], static_cast<int>(i) < leaders));
  }
  Attempt attempt;
  attempt.knowledge = Knowledge::kLeaders;
  attempt.parameter = leaders;

  attempt.model = CommModel::kSymmetricBroadcast;
  attempt.rounds = 40;
  const auto static_result = attempt_static(
      random_symmetric_connected(6, 3, 7), inputs, sum_function(), attempt);
  EXPECT_TRUE(static_result.success) << static_result.mechanism;

  attempt.model = CommModel::kOutdegreeAware;
  attempt.rounds = 500;
  const auto dynamic_result = attempt_dynamic(
      std::make_shared<RandomStronglyConnectedSchedule>(6, 3, 7), inputs,
      sum_function(), attempt);
  EXPECT_TRUE(dynamic_result.success) << dynamic_result.mechanism;
}

INSTANTIATE_TEST_SUITE_P(Counts, LeaderSweep, ::testing::Values(1, 2, 3),
                         ::testing::PrintToStringParamName());

// --- Sweep 6: degree-oblivious consensus across bound multipliers ------------

class BoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoundSweep, UniformConsensusLocksForAnyValidBound) {
  const int multiplier = GetParam();
  const Vertex n = 5;
  const std::vector<std::int64_t> inputs{1, 1, 1, 3, 3};
  Attempt attempt;
  attempt.model = CommModel::kSymmetricBroadcast;
  attempt.knowledge = Knowledge::kUpperBound;
  attempt.parameter = multiplier * n;
  // Larger N -> smaller step and finer rounding grid: scale the horizon.
  attempt.rounds = 700 * multiplier * multiplier;
  const auto result = attempt_dynamic(
      std::make_shared<RandomSymmetricSchedule>(n, 3, 21), inputs,
      average_function(), attempt);
  EXPECT_TRUE(result.success) << "multiplier=" << multiplier << ": "
                              << result.mechanism;
  EXPECT_GT(result.stabilization_round, 0);
}

INSTANTIATE_TEST_SUITE_P(Multipliers, BoundSweep, ::testing::Values(1, 2, 4),
                         ::testing::PrintToStringParamName());

// --- Sweep 7: asynchronous starts don't break Push-Sum ------------------------

class AsyncStartSweep : public ::testing::TestWithParam<int> {};

TEST_P(AsyncStartSweep, PushSumExactUnderLateJoins) {
  const int latest_start = GetParam();
  const Vertex n = 5;
  const std::vector<std::int64_t> inputs{0, 4, 0, 4, 4};
  std::vector<int> starts(static_cast<std::size_t>(n), 1);
  for (Vertex v = 0; v < n; v += 2) {
    starts[static_cast<std::size_t>(v)] = latest_start;
  }
  auto schedule = std::make_shared<AsyncStartSchedule>(
      std::make_shared<RandomStronglyConnectedSchedule>(n, 3, 77), starts);
  Attempt attempt;
  attempt.model = CommModel::kOutdegreeAware;
  attempt.knowledge = Knowledge::kUpperBound;
  attempt.parameter = 8;
  attempt.rounds = 300 + latest_start;
  const auto result =
      attempt_dynamic(schedule, inputs, average_function(), attempt);
  EXPECT_TRUE(result.success) << "latest_start=" << latest_start << ": "
                              << result.mechanism;
}

INSTANTIATE_TEST_SUITE_P(StartRounds, AsyncStartSweep,
                         ::testing::Values(1, 5, 20, 60),
                         ::testing::PrintToStringParamName());

// --- Sweep 8: agreement — all agents output the same thing -------------------

class AgreementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AgreementSweep, MinBasePipelineAgentsAgreeOnceAllPlausible) {
  // δ-computation demands a COMMON limit (Section 2.3). Once every agent's
  // candidate is plausible, the derived frequency estimates must agree —
  // even before they are correct.
  const std::uint64_t seed = GetParam();
  const Digraph g = random_symmetric_connected(7, 3, seed + 200);
  std::vector<std::int64_t> inputs;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(0, 2);
  for (Vertex v = 0; v < 7; ++v) inputs.push_back(dist(rng));

  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<MinBaseAgent> agents;
  for (std::int64_t input : inputs) {
    agents.emplace_back(registry, codec, input,
                        CommModel::kSymmetricBroadcast);
  }
  Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(g),
                              std::move(agents),
                              CommModel::kSymmetricBroadcast);
  exec.run(7 + 2 * diameter(g) + 2);
  std::optional<Frequency> reference;
  for (const MinBaseAgent& agent : exec.agents()) {
    const auto estimate = static_frequency_estimate(
        agent.candidate(), *codec, CommModel::kSymmetricBroadcast);
    ASSERT_TRUE(estimate.has_value()) << seed;
    if (!reference.has_value()) reference = estimate;
    EXPECT_EQ(*estimate, *reference) << seed;
  }
  EXPECT_EQ(*reference, Frequency::of(inputs)) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace anonet
