// Tests for TraceRecorder: row-width enforcement, CSV/JSONL shape, default
// labels, and I/O failure reporting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runtime/trace.hpp"

namespace anonet {
namespace {

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Trace, DefaultLabelsComeFromTheFirstRow) {
  TraceRecorder trace;
  const std::vector<double> row = {1.0, 2.5, -3.0};
  trace.record(1, row);
  EXPECT_EQ(trace.rows(), 1u);
  const std::string csv = trace.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "round,agent0,agent1,agent2");
}

TEST(Trace, RowWidthIsEnforced) {
  TraceRecorder trace({"a", "b"});
  const std::vector<double> good = {1.0, 2.0};
  trace.record(1, good);
  const std::vector<double> narrow = {1.0};
  const std::vector<double> wide = {1.0, 2.0, 3.0};
  EXPECT_THROW(trace.record(2, narrow), std::invalid_argument);
  EXPECT_THROW(trace.record(2, wide), std::invalid_argument);
  EXPECT_EQ(trace.rows(), 1u);  // failed rows are not recorded
}

TEST(Trace, CsvHasOneLinePerRowPlusHeader) {
  TraceRecorder trace({"x", "y"});
  const std::vector<double> r1 = {0.5, 1.0};
  const std::vector<double> r2 = {0.25, 2.0};
  trace.record(1, r1);
  trace.record(2, r2);
  EXPECT_EQ(trace.to_csv(), "round,x,y\n1,0.5,1\n2,0.25,2\n");
}

TEST(Trace, JsonlMirrorsTheCsvRows) {
  TraceRecorder trace({"x", "y"});
  const std::vector<double> r1 = {0.5, 1.0};
  const std::vector<double> r2 = {0.25, 2.0};
  trace.record(1, r1);
  trace.record(2, r2);
  EXPECT_EQ(trace.to_jsonl(),
            "{\"round\":1,\"x\":0.5,\"y\":1}\n"
            "{\"round\":2,\"x\":0.25,\"y\":2}\n");
}

TEST(Trace, WriteRoundTripsAndReportsIoFailure) {
  TraceRecorder trace({"v"});
  const std::vector<double> row = {42.0};
  trace.record(1, row);

  const std::string csv_path = ::testing::TempDir() + "anonet_trace.csv";
  const std::string jsonl_path = ::testing::TempDir() + "anonet_trace.jsonl";
  trace.write_csv(csv_path);
  trace.write_jsonl(jsonl_path);
  EXPECT_EQ(read_bytes(csv_path), trace.to_csv());
  EXPECT_EQ(read_bytes(jsonl_path), trace.to_jsonl());
  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());

  const std::string bad = ::testing::TempDir() + "no_such_dir/trace.csv";
  EXPECT_THROW(trace.write_csv(bad), std::runtime_error);
  EXPECT_THROW(trace.write_jsonl(bad), std::runtime_error);
}

TEST(Trace, EmptyRecorderProducesHeaderlessOutput) {
  const TraceRecorder trace;
  EXPECT_EQ(trace.rows(), 0u);
  EXPECT_EQ(trace.to_csv(), "round\n");
  EXPECT_EQ(trace.to_jsonl(), "");
}

}  // namespace
}  // namespace anonet
