// Unit tests for the arbitrary-precision integers (support/bigint.hpp).

#include "support/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

namespace anonet {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.signum(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
}

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t value : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                             std::int64_t{42}, std::int64_t{-1234567890123},
                             std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(BigInt(value).to_int64(), value) << value;
  }
}

TEST(BigInt, StringRoundTrip) {
  for (const char* text : {"0", "1", "-1", "123456789012345678901234567890",
                           "-999999999999999999999999999999999"}) {
    EXPECT_EQ(BigInt::from_string(text).to_string(), text);
  }
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a3"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, MixedSignAddition) {
  EXPECT_EQ((BigInt(5) + BigInt(-7)).to_int64(), -2);
  EXPECT_EQ((BigInt(-5) + BigInt(7)).to_int64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(5)).to_int64(), 0);
}

TEST(BigInt, MultiplicationLarge) {
  const BigInt a = BigInt::from_string("123456789123456789");
  const BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
}

TEST(BigInt, TruncatedDivisionSemantics) {
  // Quotient rounds toward zero; remainder carries the dividend's sign,
  // matching C++ so Rational reduction behaves as expected.
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).to_int64(), -1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-3), BigInt(2));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_GT(BigInt::from_string("100000000000000000000"), BigInt(1));
  EXPECT_EQ(BigInt(17), BigInt::from_string("17"));
}

TEST(BigInt, Shifts) {
  EXPECT_EQ(BigInt(1).shifted_left(100).shifted_right(100), BigInt(1));
  EXPECT_EQ(BigInt(5).shifted_left(3).to_int64(), 40);
  EXPECT_EQ(BigInt(40).shifted_right(3).to_int64(), 5);
  EXPECT_EQ(BigInt(1).shifted_right(1).to_int64(), 0);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt(1).shifted_left(200).bit_length(), 201u);
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(gcd(BigInt(0), BigInt(0)).to_int64(), 0);
  EXPECT_EQ(lcm(BigInt(4), BigInt(6)).to_int64(), 12);
  EXPECT_EQ(lcm(BigInt(0), BigInt(7)).to_int64(), 0);
}

TEST(BigInt, ToInt64OverflowThrows) {
  const BigInt big = BigInt::from_string("9223372036854775808");  // 2^63
  EXPECT_THROW(static_cast<void>(big.to_int64()), std::overflow_error);
  const BigInt min = BigInt::from_string("-9223372036854775808");  // -2^63
  EXPECT_EQ(min.to_int64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW(static_cast<void>((min - BigInt(1)).to_int64()),
               std::overflow_error);
}

TEST(BigInt, RandomizedAgainstInt128) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000'000'000,
                                                   1'000'000'000'000'000);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = dist(rng);
    const std::int64_t b = dist(rng);
    const __int128 product = static_cast<__int128>(a) * b;
    const BigInt big_product = BigInt(a) * BigInt(b);
    // Reconstruct the __int128 via string comparison through two limbs.
    __int128 reconstructed = 0;
    const std::string text = big_product.to_string();
    bool negative = false;
    for (char c : text) {
      if (c == '-') {
        negative = true;
        continue;
      }
      reconstructed = reconstructed * 10 + (c - '0');
    }
    if (negative) reconstructed = -reconstructed;
    EXPECT_EQ(reconstructed, product);
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_int64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_int64(), a - b);
    if (b != 0) {
      EXPECT_EQ((BigInt(a) / BigInt(b)).to_int64(), a / b);
      EXPECT_EQ((BigInt(a) % BigInt(b)).to_int64(), a % b);
    }
  }
}

TEST(BigInt, DivModReconstruction) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000, 1'000'000'000);
  for (int i = 0; i < 500; ++i) {
    const BigInt a = BigInt(dist(rng)) * BigInt(dist(rng));
    BigInt b = BigInt(dist(rng));
    if (b.is_zero()) b = BigInt(1);
    BigInt q, r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
  }
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1234).to_double(), 1234.0);
  EXPECT_DOUBLE_EQ(BigInt(-1234).to_double(), -1234.0);
  EXPECT_NEAR(BigInt::from_string("1000000000000000000000").to_double(), 1e21,
              1e6);
}

}  // namespace
}  // namespace anonet
