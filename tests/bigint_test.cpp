// Unit tests for the arbitrary-precision integers (support/bigint.hpp).

#include "support/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

namespace anonet {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.signum(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
}

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t value : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                             std::int64_t{42}, std::int64_t{-1234567890123},
                             std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(BigInt(value).to_int64(), value) << value;
  }
}

TEST(BigInt, StringRoundTrip) {
  for (const char* text : {"0", "1", "-1", "123456789012345678901234567890",
                           "-999999999999999999999999999999999"}) {
    EXPECT_EQ(BigInt::from_string(text).to_string(), text);
  }
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a3"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, MixedSignAddition) {
  EXPECT_EQ((BigInt(5) + BigInt(-7)).to_int64(), -2);
  EXPECT_EQ((BigInt(-5) + BigInt(7)).to_int64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(5)).to_int64(), 0);
}

TEST(BigInt, MultiplicationLarge) {
  const BigInt a = BigInt::from_string("123456789123456789");
  const BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
}

TEST(BigInt, TruncatedDivisionSemantics) {
  // Quotient rounds toward zero; remainder carries the dividend's sign,
  // matching C++ so Rational reduction behaves as expected.
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).to_int64(), -1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-3), BigInt(2));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_GT(BigInt::from_string("100000000000000000000"), BigInt(1));
  EXPECT_EQ(BigInt(17), BigInt::from_string("17"));
}

TEST(BigInt, Shifts) {
  EXPECT_EQ(BigInt(1).shifted_left(100).shifted_right(100), BigInt(1));
  EXPECT_EQ(BigInt(5).shifted_left(3).to_int64(), 40);
  EXPECT_EQ(BigInt(40).shifted_right(3).to_int64(), 5);
  EXPECT_EQ(BigInt(1).shifted_right(1).to_int64(), 0);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt(1).shifted_left(200).bit_length(), 201u);
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(gcd(BigInt(0), BigInt(0)).to_int64(), 0);
  EXPECT_EQ(lcm(BigInt(4), BigInt(6)).to_int64(), 12);
  EXPECT_EQ(lcm(BigInt(0), BigInt(7)).to_int64(), 0);
}

TEST(BigInt, ToInt64OverflowThrows) {
  const BigInt big = BigInt::from_string("9223372036854775808");  // 2^63
  EXPECT_THROW(static_cast<void>(big.to_int64()), std::overflow_error);
  const BigInt min = BigInt::from_string("-9223372036854775808");  // -2^63
  EXPECT_EQ(min.to_int64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW(static_cast<void>((min - BigInt(1)).to_int64()),
               std::overflow_error);
}

TEST(BigInt, RandomizedAgainstInt128) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000'000'000,
                                                   1'000'000'000'000'000);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = dist(rng);
    const std::int64_t b = dist(rng);
    const __int128 product = static_cast<__int128>(a) * b;
    const BigInt big_product = BigInt(a) * BigInt(b);
    // Reconstruct the __int128 via string comparison through two limbs.
    __int128 reconstructed = 0;
    const std::string text = big_product.to_string();
    bool negative = false;
    for (char c : text) {
      if (c == '-') {
        negative = true;
        continue;
      }
      reconstructed = reconstructed * 10 + (c - '0');
    }
    if (negative) reconstructed = -reconstructed;
    EXPECT_EQ(reconstructed, product);
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_int64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_int64(), a - b);
    if (b != 0) {
      EXPECT_EQ((BigInt(a) / BigInt(b)).to_int64(), a / b);
      EXPECT_EQ((BigInt(a) % BigInt(b)).to_int64(), a % b);
    }
  }
}

TEST(BigInt, DivModReconstruction) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000, 1'000'000'000);
  for (int i = 0; i < 500; ++i) {
    const BigInt a = BigInt(dist(rng)) * BigInt(dist(rng));
    BigInt b = BigInt(dist(rng));
    if (b.is_zero()) b = BigInt(1);
    BigInt q, r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
  }
}

// --- inline/limb spill boundary ---------------------------------------------
// BigInt stores values fitting int64 inline and spills to limbs beyond; the
// representation must be canonical (spill exactly when the value leaves
// [-2^63, 2^63 - 1]) for defaulted equality and hashing to be sound. These
// tests walk every power-of-two frontier near the boundary in both signs.

namespace {

std::string int128_to_string(__int128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  unsigned __int128 magnitude =
      negative ? -static_cast<unsigned __int128>(value)
               : static_cast<unsigned __int128>(value);
  std::string digits;
  while (magnitude != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  if (negative) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

}  // namespace

TEST(BigInt, SpillBoundaryFitsInt64IsExact) {
  const BigInt two63 = BigInt(1).shifted_left(63);
  EXPECT_TRUE((two63 - BigInt(1)).fits_int64());
  EXPECT_EQ((two63 - BigInt(1)).to_int64(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(two63.fits_int64());
  EXPECT_TRUE((BigInt(0) - two63).fits_int64());
  EXPECT_EQ((BigInt(0) - two63).to_int64(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE((BigInt(0) - two63 - BigInt(1)).fits_int64());
}

TEST(BigInt, SpillBoundaryAddSubCrossings) {
  for (int bits : {62, 63, 64}) {
    const BigInt base = BigInt(1).shifted_left(static_cast<std::size_t>(bits));
    for (int sign : {1, -1}) {
      const BigInt anchor = sign < 0 ? BigInt(0) - base : base;
      for (std::int64_t d = -3; d <= 3; ++d) {
        const BigInt v = anchor + BigInt(d);
        // String round trip is representation-independent.
        EXPECT_EQ(BigInt::from_string(v.to_string()), v) << bits << " " << d;
        // Crossing back and forth over the boundary is lossless.
        EXPECT_EQ(v + BigInt(9) - BigInt(9), v);
        EXPECT_EQ(v - BigInt(9) + BigInt(9), v);
        EXPECT_EQ(v - anchor, BigInt(d));
        EXPECT_EQ((v + v) - v, v);
        EXPECT_EQ(v.negate().negate(), v);
      }
    }
  }
}

TEST(BigInt, SpillBoundaryEqualityAndHashAcrossRoutes) {
  // Equal values must compare and hash equal no matter which arithmetic
  // route produced them (this is what representation canonicality buys).
  const BigInt two63 = BigInt(1).shifted_left(63);
  const BigInt max_inline = BigInt(std::numeric_limits<std::int64_t>::max());
  const BigInt min_inline = BigInt(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(two63 - BigInt(1), max_inline);
  EXPECT_EQ((two63 - BigInt(1)).hash(), max_inline.hash());
  EXPECT_EQ(BigInt(0) - two63, min_inline);
  EXPECT_EQ((BigInt(0) - two63).hash(), min_inline.hash());
  EXPECT_EQ(min_inline.negate(), two63);
  EXPECT_EQ(min_inline.negate().hash(), two63.hash());
  EXPECT_EQ(min_inline * BigInt(-1), two63);
  EXPECT_EQ(BigInt(-(std::int64_t{1} << 32)) * BigInt(std::int64_t{1} << 31),
            min_inline);
}

TEST(BigInt, SpillBoundaryMulMatchesInt128) {
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<std::int64_t> near(-5, 5);
  const std::int64_t quarter = std::int64_t{1} << 31;
  for (int i = 0; i < 400; ++i) {
    // Factors straddling 2^31: products land on both sides of the int64
    // spill boundary.
    const std::int64_t a = (rng() % 2 ? quarter : -quarter) + near(rng);
    const std::int64_t b = (rng() % 2 ? quarter : -quarter) + near(rng);
    const __int128 product = static_cast<__int128>(a) * b;
    EXPECT_EQ((BigInt(a) * BigInt(b)).to_string(), int128_to_string(product))
        << a << " * " << b;
  }
}

TEST(BigInt, SpillBoundaryDivModReconstruction) {
  const BigInt two64 = BigInt(1).shifted_left(64);
  std::vector<BigInt> dividends;
  for (int bits : {62, 63, 64}) {
    const BigInt base = BigInt(1).shifted_left(static_cast<std::size_t>(bits));
    for (std::int64_t d = -2; d <= 2; ++d) {
      dividends.push_back(base + BigInt(d));
      dividends.push_back(BigInt(0) - base + BigInt(d));
    }
  }
  std::vector<BigInt> divisors = {BigInt(1),    BigInt(-1),  BigInt(3),
                                  BigInt(-7),   BigInt(913), two64 - BigInt(5),
                                  BigInt(0) - two64 + BigInt(3)};
  for (const BigInt& a : dividends) {
    for (const BigInt& b : divisors) {
      BigInt q, r;
      BigInt::div_mod(a, b, q, r);
      EXPECT_EQ(q * b + r, a) << a.to_string() << " / " << b.to_string();
      EXPECT_LT(r.abs(), b.abs());
      // Truncated semantics: remainder carries the dividend's sign.
      if (!r.is_zero()) {
        EXPECT_EQ(r.signum(), a.signum());
      }
    }
  }
  // INT64_MIN / -1 is the one small/small case whose quotient spills.
  const BigInt min_inline = BigInt(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(min_inline / BigInt(-1), BigInt(1).shifted_left(63));
  EXPECT_EQ(min_inline % BigInt(-1), BigInt(0));
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1234).to_double(), 1234.0);
  EXPECT_DOUBLE_EQ(BigInt(-1234).to_double(), -1234.0);
  EXPECT_NEAR(BigInt::from_string("1000000000000000000000").to_double(), 1e21,
              1e6);
}

}  // namespace
}  // namespace anonet
