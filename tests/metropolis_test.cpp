// Tests for Metropolis averaging (core/metropolis.hpp) on symmetric static
// and dynamic networks.

#include "core/metropolis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

TEST(Metropolis, AveragesOnStaticSymmetricGraph) {
  const std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<MetropolisAgent> agents;
  for (double v : values) agents.emplace_back(v);
  Executor<MetropolisAgent> exec(
      std::make_shared<StaticSchedule>(random_symmetric_connected(8, 4, 3)),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(400);
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_NEAR(exec.agent(v).output(), 4.5, 1e-6) << v;
  }
}

TEST(Metropolis, PreservesTheSumEveryRound) {
  std::vector<MetropolisAgent> agents;
  const std::vector<double> values{3, -1, 4, 1, -5};
  for (double v : values) agents.emplace_back(v);
  Executor<MetropolisAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(5, 2, 11), std::move(agents),
      CommModel::kOutdegreeAware);
  for (int round = 0; round < 60; ++round) {
    exec.step();
    double total = 0.0;
    for (Vertex v = 0; v < 5; ++v) total += exec.agent(v).output();
    EXPECT_NEAR(total, 2.0, 1e-9) << round;
  }
}

TEST(Metropolis, ConvergesOnDynamicSymmetricNetworks) {
  const std::vector<double> values{0, 0, 0, 12, 0, 0};
  std::vector<MetropolisAgent> agents;
  for (double v : values) agents.emplace_back(v);
  Executor<MetropolisAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 3, 7), std::move(agents),
      CommModel::kOutdegreeAware);
  exec.run(500);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_NEAR(exec.agent(v).output(), 2.0, 1e-6) << v;
  }
}

TEST(Metropolis, ToleratesAsynchronousStarts) {
  auto inner = std::make_shared<RandomSymmetricSchedule>(4, 2, 19);
  auto schedule = std::make_shared<AsyncStartSchedule>(
      inner, std::vector<int>{1, 6, 3, 9});
  std::vector<MetropolisAgent> agents;
  for (double v : {8.0, 0.0, 4.0, 4.0}) agents.emplace_back(v);
  Executor<MetropolisAgent> exec(schedule, std::move(agents),
                                 CommModel::kOutdegreeAware);
  exec.run(600);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_NEAR(exec.agent(v).output(), 4.0, 1e-6) << v;
  }
}

TEST(Metropolis, RequiresOutdegreeAwareness) {
  MetropolisAgent agent(1.0);
  EXPECT_THROW(static_cast<void>(agent.send(0, 0)), std::logic_error);
}

TEST(FrequencyMetropolis, IndicatorAveragesAreFrequencies) {
  const std::vector<std::int64_t> inputs{1, 1, 2, 2, 2, 9, 9, 9};
  std::vector<FrequencyMetropolisAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyMetropolisAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(8, 4, 5), std::move(agents),
      CommModel::kOutdegreeAware);
  exec.run(600);
  for (Vertex v = 0; v < 8; ++v) {
    const auto& est = exec.agent(v).estimates();
    EXPECT_NEAR(est.at(1), 0.25, 1e-6);
    EXPECT_NEAR(est.at(2), 0.375, 1e-6);
    EXPECT_NEAR(est.at(9), 0.375, 1e-6);
  }
}

TEST(FrequencyMetropolis, LazyJoiningPreservesPerValueSums) {
  // The per-value global sum must stay equal to the initial multiplicity in
  // every round, despite values materializing lazily at different agents.
  const std::vector<std::int64_t> inputs{4, 4, 6, 6, 6, 1};
  std::vector<FrequencyMetropolisAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyMetropolisAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 2, 29), std::move(agents),
      CommModel::kOutdegreeAware);
  for (int round = 0; round < 40; ++round) {
    exec.step();
    std::map<std::int64_t, double> totals;
    for (Vertex v = 0; v < 6; ++v) {
      for (const auto& [value, x] : exec.agent(v).estimates()) {
        totals[value] += x;
      }
    }
    EXPECT_NEAR(totals[4], 2.0, 1e-9) << round;
    EXPECT_NEAR(totals[6], 3.0, 1e-9) << round;
    EXPECT_NEAR(totals[1], 1.0, 1e-9) << round;
  }
}

TEST(FrequencyMetropolis, RoundedFrequencyLocksExactly) {
  const std::vector<std::int64_t> inputs{7, 7, 7, 2};
  std::vector<FrequencyMetropolisAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyMetropolisAgent> exec(
      std::make_shared<StaticSchedule>(random_symmetric_connected(4, 2, 13)),
      std::move(agents), CommModel::kOutdegreeAware);
  const Frequency truth = Frequency::of(inputs);
  exec.run(250);
  for (int extra = 0; extra < 5; ++extra) {
    exec.step();
    for (Vertex v = 0; v < 4; ++v) {
      const auto rounded = exec.agent(v).rounded_frequency(6);
      ASSERT_TRUE(rounded.has_value());
      EXPECT_EQ(*rounded, truth);
    }
  }
}

TEST(FrequencyMetropolis, EstimatesStayInUnitInterval) {
  // Metropolis iterates are convex-ish combinations: indicator averages
  // must remain within [0, 1] (allowing tiny float slack).
  const std::vector<std::int64_t> inputs{1, 2, 3, 4, 5};
  std::vector<FrequencyMetropolisAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyMetropolisAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(5, 3, 31), std::move(agents),
      CommModel::kOutdegreeAware);
  for (int round = 0; round < 50; ++round) {
    exec.step();
    for (Vertex v = 0; v < 5; ++v) {
      for (const auto& [value, x] : exec.agent(v).estimates()) {
        EXPECT_GE(x, -1e-12);
        EXPECT_LE(x, 1.0 + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace anonet
