# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_average "/root/repo/build/examples/sensor_average")
set_tests_properties(example_sensor_average PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vote_threshold "/root/repo/build/examples/vote_threshold")
set_tests_properties(example_vote_threshold PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leader_census "/root/repo/build/examples/leader_census")
set_tests_properties(example_leader_census PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_opinion_dynamics "/root/repo/build/examples/opinion_dynamics")
set_tests_properties(example_opinion_dynamics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_static "/root/repo/build/examples/explore" "--graph" "ring:6" "--inputs" "alt:6:1:5" "--model" "outdegree" "--function" "average")
set_tests_properties(explore_static PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_dynamic_leader "/root/repo/build/examples/explore" "--dynamic" "sc:6:3:7" "--inputs" "alt:6:2:4" "--model" "outdegree" "--function" "sum" "--knowledge" "leaders:1")
set_tests_properties(explore_dynamic_leader PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_ports "/root/repo/build/examples/explore" "--graph" "sc:6:4:9" "--inputs" "alt:6:0:3" "--model" "ports" "--function" "variance")
set_tests_properties(explore_ports PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_impossible "/root/repo/build/examples/explore" "--graph" "ring:4" "--inputs" "alt:4:1:2" "--model" "broadcast" "--function" "sum")
set_tests_properties(explore_impossible PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
