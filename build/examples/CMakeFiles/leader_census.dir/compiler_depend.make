# Empty compiler generated dependencies file for leader_census.
# This may be replaced when dependencies are built.
