file(REMOVE_RECURSE
  "CMakeFiles/leader_census.dir/leader_census.cpp.o"
  "CMakeFiles/leader_census.dir/leader_census.cpp.o.d"
  "leader_census"
  "leader_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
