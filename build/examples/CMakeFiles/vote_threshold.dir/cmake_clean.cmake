file(REMOVE_RECURSE
  "CMakeFiles/vote_threshold.dir/vote_threshold.cpp.o"
  "CMakeFiles/vote_threshold.dir/vote_threshold.cpp.o.d"
  "vote_threshold"
  "vote_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vote_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
