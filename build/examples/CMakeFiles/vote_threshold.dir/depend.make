# Empty dependencies file for vote_threshold.
# This may be replaced when dependencies are built.
