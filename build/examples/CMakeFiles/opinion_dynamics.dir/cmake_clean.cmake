file(REMOVE_RECURSE
  "CMakeFiles/opinion_dynamics.dir/opinion_dynamics.cpp.o"
  "CMakeFiles/opinion_dynamics.dir/opinion_dynamics.cpp.o.d"
  "opinion_dynamics"
  "opinion_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
