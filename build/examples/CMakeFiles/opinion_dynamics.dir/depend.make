# Empty dependencies file for opinion_dynamics.
# This may be replaced when dependencies are built.
