# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/rational_test[1]_include.cmake")
include("/root/repo/build/tests/farey_test[1]_include.cmake")
include("/root/repo/build/tests/digraph_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/isomorphism_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/minimum_base_test[1]_include.cmake")
include("/root/repo/build/tests/fibration_test[1]_include.cmake")
include("/root/repo/build/tests/views_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/schedules_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/functions_test[1]_include.cmake")
include("/root/repo/build/tests/gossip_test[1]_include.cmake")
include("/root/repo/build/tests/minbase_agent_test[1]_include.cmake")
include("/root/repo/build/tests/freq_static_test[1]_include.cmake")
include("/root/repo/build/tests/census_test[1]_include.cmake")
include("/root/repo/build/tests/pushsum_test[1]_include.cmake")
include("/root/repo/build/tests/exact_pushsum_test[1]_include.cmake")
include("/root/repo/build/tests/history_tree_test[1]_include.cmake")
include("/root/repo/build/tests/metropolis_test[1]_include.cmake")
include("/root/repo/build/tests/uniform_consensus_test[1]_include.cmake")
include("/root/repo/build/tests/computability_test[1]_include.cmake")
include("/root/repo/build/tests/lifting_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweeps_test[1]_include.cmake")
