file(REMOVE_RECURSE
  "CMakeFiles/exact_pushsum_test.dir/exact_pushsum_test.cpp.o"
  "CMakeFiles/exact_pushsum_test.dir/exact_pushsum_test.cpp.o.d"
  "exact_pushsum_test"
  "exact_pushsum_test.pdb"
  "exact_pushsum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_pushsum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
