# Empty dependencies file for exact_pushsum_test.
# This may be replaced when dependencies are built.
