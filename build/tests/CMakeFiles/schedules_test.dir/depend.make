# Empty dependencies file for schedules_test.
# This may be replaced when dependencies are built.
