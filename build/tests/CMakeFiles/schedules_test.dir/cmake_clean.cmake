file(REMOVE_RECURSE
  "CMakeFiles/schedules_test.dir/schedules_test.cpp.o"
  "CMakeFiles/schedules_test.dir/schedules_test.cpp.o.d"
  "schedules_test"
  "schedules_test.pdb"
  "schedules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
