# Empty compiler generated dependencies file for uniform_consensus_test.
# This may be replaced when dependencies are built.
