file(REMOVE_RECURSE
  "CMakeFiles/uniform_consensus_test.dir/uniform_consensus_test.cpp.o"
  "CMakeFiles/uniform_consensus_test.dir/uniform_consensus_test.cpp.o.d"
  "uniform_consensus_test"
  "uniform_consensus_test.pdb"
  "uniform_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniform_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
