file(REMOVE_RECURSE
  "CMakeFiles/metropolis_test.dir/metropolis_test.cpp.o"
  "CMakeFiles/metropolis_test.dir/metropolis_test.cpp.o.d"
  "metropolis_test"
  "metropolis_test.pdb"
  "metropolis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metropolis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
