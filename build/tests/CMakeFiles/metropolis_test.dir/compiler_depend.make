# Empty compiler generated dependencies file for metropolis_test.
# This may be replaced when dependencies are built.
