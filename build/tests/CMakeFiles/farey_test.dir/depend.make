# Empty dependencies file for farey_test.
# This may be replaced when dependencies are built.
