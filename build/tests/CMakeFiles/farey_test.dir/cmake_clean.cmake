file(REMOVE_RECURSE
  "CMakeFiles/farey_test.dir/farey_test.cpp.o"
  "CMakeFiles/farey_test.dir/farey_test.cpp.o.d"
  "farey_test"
  "farey_test.pdb"
  "farey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
