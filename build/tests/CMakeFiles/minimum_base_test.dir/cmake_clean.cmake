file(REMOVE_RECURSE
  "CMakeFiles/minimum_base_test.dir/minimum_base_test.cpp.o"
  "CMakeFiles/minimum_base_test.dir/minimum_base_test.cpp.o.d"
  "minimum_base_test"
  "minimum_base_test.pdb"
  "minimum_base_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimum_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
