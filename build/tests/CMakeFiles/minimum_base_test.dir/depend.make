# Empty dependencies file for minimum_base_test.
# This may be replaced when dependencies are built.
