# Empty dependencies file for fibration_test.
# This may be replaced when dependencies are built.
