file(REMOVE_RECURSE
  "CMakeFiles/fibration_test.dir/fibration_test.cpp.o"
  "CMakeFiles/fibration_test.dir/fibration_test.cpp.o.d"
  "fibration_test"
  "fibration_test.pdb"
  "fibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
