file(REMOVE_RECURSE
  "CMakeFiles/history_tree_test.dir/history_tree_test.cpp.o"
  "CMakeFiles/history_tree_test.dir/history_tree_test.cpp.o.d"
  "history_tree_test"
  "history_tree_test.pdb"
  "history_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
