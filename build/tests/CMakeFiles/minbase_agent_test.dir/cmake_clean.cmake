file(REMOVE_RECURSE
  "CMakeFiles/minbase_agent_test.dir/minbase_agent_test.cpp.o"
  "CMakeFiles/minbase_agent_test.dir/minbase_agent_test.cpp.o.d"
  "minbase_agent_test"
  "minbase_agent_test.pdb"
  "minbase_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minbase_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
