# Empty compiler generated dependencies file for minbase_agent_test.
# This may be replaced when dependencies are built.
