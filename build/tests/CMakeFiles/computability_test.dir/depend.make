# Empty dependencies file for computability_test.
# This may be replaced when dependencies are built.
