file(REMOVE_RECURSE
  "CMakeFiles/computability_test.dir/computability_test.cpp.o"
  "CMakeFiles/computability_test.dir/computability_test.cpp.o.d"
  "computability_test"
  "computability_test.pdb"
  "computability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/computability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
