# Empty compiler generated dependencies file for freq_static_test.
# This may be replaced when dependencies are built.
