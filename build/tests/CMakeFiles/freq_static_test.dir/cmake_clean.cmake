file(REMOVE_RECURSE
  "CMakeFiles/freq_static_test.dir/freq_static_test.cpp.o"
  "CMakeFiles/freq_static_test.dir/freq_static_test.cpp.o.d"
  "freq_static_test"
  "freq_static_test.pdb"
  "freq_static_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freq_static_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
