file(REMOVE_RECURSE
  "CMakeFiles/pushsum_test.dir/pushsum_test.cpp.o"
  "CMakeFiles/pushsum_test.dir/pushsum_test.cpp.o.d"
  "pushsum_test"
  "pushsum_test.pdb"
  "pushsum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushsum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
