# Empty dependencies file for pushsum_test.
# This may be replaced when dependencies are built.
