# Empty compiler generated dependencies file for rounding_stabilization.
# This may be replaced when dependencies are built.
