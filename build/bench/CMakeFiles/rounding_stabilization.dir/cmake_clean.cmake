file(REMOVE_RECURSE
  "CMakeFiles/rounding_stabilization.dir/rounding_stabilization.cpp.o"
  "CMakeFiles/rounding_stabilization.dir/rounding_stabilization.cpp.o.d"
  "rounding_stabilization"
  "rounding_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounding_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
