# Empty compiler generated dependencies file for bandwidth_ablation.
# This may be replaced when dependencies are built.
