# Empty compiler generated dependencies file for pushsum_convergence.
# This may be replaced when dependencies are built.
