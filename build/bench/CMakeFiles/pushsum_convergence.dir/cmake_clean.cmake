file(REMOVE_RECURSE
  "CMakeFiles/pushsum_convergence.dir/pushsum_convergence.cpp.o"
  "CMakeFiles/pushsum_convergence.dir/pushsum_convergence.cpp.o.d"
  "pushsum_convergence"
  "pushsum_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushsum_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
