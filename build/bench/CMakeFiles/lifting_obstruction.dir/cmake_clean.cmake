file(REMOVE_RECURSE
  "CMakeFiles/lifting_obstruction.dir/lifting_obstruction.cpp.o"
  "CMakeFiles/lifting_obstruction.dir/lifting_obstruction.cpp.o.d"
  "lifting_obstruction"
  "lifting_obstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifting_obstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
