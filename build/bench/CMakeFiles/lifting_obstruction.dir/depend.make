# Empty dependencies file for lifting_obstruction.
# This may be replaced when dependencies are built.
