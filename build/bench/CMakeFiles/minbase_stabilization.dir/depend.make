# Empty dependencies file for minbase_stabilization.
# This may be replaced when dependencies are built.
