file(REMOVE_RECURSE
  "CMakeFiles/minbase_stabilization.dir/minbase_stabilization.cpp.o"
  "CMakeFiles/minbase_stabilization.dir/minbase_stabilization.cpp.o.d"
  "minbase_stabilization"
  "minbase_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minbase_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
