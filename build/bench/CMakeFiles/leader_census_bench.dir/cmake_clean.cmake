file(REMOVE_RECURSE
  "CMakeFiles/leader_census_bench.dir/leader_census.cpp.o"
  "CMakeFiles/leader_census_bench.dir/leader_census.cpp.o.d"
  "leader_census_bench"
  "leader_census_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_census_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
