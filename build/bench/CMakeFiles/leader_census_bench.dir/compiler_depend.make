# Empty compiler generated dependencies file for leader_census_bench.
# This may be replaced when dependencies are built.
