file(REMOVE_RECURSE
  "CMakeFiles/footnote_census.dir/footnote_census.cpp.o"
  "CMakeFiles/footnote_census.dir/footnote_census.cpp.o.d"
  "footnote_census"
  "footnote_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/footnote_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
