# Empty compiler generated dependencies file for footnote_census.
# This may be replaced when dependencies are built.
