# Empty compiler generated dependencies file for degree_oblivious_ablation.
# This may be replaced when dependencies are built.
