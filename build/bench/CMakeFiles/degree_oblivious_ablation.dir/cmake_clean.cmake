file(REMOVE_RECURSE
  "CMakeFiles/degree_oblivious_ablation.dir/degree_oblivious_ablation.cpp.o"
  "CMakeFiles/degree_oblivious_ablation.dir/degree_oblivious_ablation.cpp.o.d"
  "degree_oblivious_ablation"
  "degree_oblivious_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_oblivious_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
