file(REMOVE_RECURSE
  "CMakeFiles/window_ablation.dir/window_ablation.cpp.o"
  "CMakeFiles/window_ablation.dir/window_ablation.cpp.o.d"
  "window_ablation"
  "window_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
