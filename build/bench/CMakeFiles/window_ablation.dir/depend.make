# Empty dependencies file for window_ablation.
# This may be replaced when dependencies are built.
