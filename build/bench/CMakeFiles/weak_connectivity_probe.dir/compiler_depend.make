# Empty compiler generated dependencies file for weak_connectivity_probe.
# This may be replaced when dependencies are built.
