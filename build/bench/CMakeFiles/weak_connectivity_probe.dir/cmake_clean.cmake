file(REMOVE_RECURSE
  "CMakeFiles/weak_connectivity_probe.dir/weak_connectivity_probe.cpp.o"
  "CMakeFiles/weak_connectivity_probe.dir/weak_connectivity_probe.cpp.o.d"
  "weak_connectivity_probe"
  "weak_connectivity_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_connectivity_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
