file(REMOVE_RECURSE
  "CMakeFiles/table1_static.dir/table1_static.cpp.o"
  "CMakeFiles/table1_static.dir/table1_static.cpp.o.d"
  "table1_static"
  "table1_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
