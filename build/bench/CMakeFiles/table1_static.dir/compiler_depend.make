# Empty compiler generated dependencies file for table1_static.
# This may be replaced when dependencies are built.
