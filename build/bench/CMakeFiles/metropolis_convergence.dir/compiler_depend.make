# Empty compiler generated dependencies file for metropolis_convergence.
# This may be replaced when dependencies are built.
