file(REMOVE_RECURSE
  "CMakeFiles/metropolis_convergence.dir/metropolis_convergence.cpp.o"
  "CMakeFiles/metropolis_convergence.dir/metropolis_convergence.cpp.o.d"
  "metropolis_convergence"
  "metropolis_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metropolis_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
