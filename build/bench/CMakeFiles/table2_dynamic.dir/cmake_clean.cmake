file(REMOVE_RECURSE
  "CMakeFiles/table2_dynamic.dir/table2_dynamic.cpp.o"
  "CMakeFiles/table2_dynamic.dir/table2_dynamic.cpp.o.d"
  "table2_dynamic"
  "table2_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
