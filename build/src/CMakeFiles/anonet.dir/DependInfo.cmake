
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/census.cpp" "src/CMakeFiles/anonet.dir/core/census.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/census.cpp.o.d"
  "/root/repo/src/core/computability.cpp" "src/CMakeFiles/anonet.dir/core/computability.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/computability.cpp.o.d"
  "/root/repo/src/core/exact_pushsum.cpp" "src/CMakeFiles/anonet.dir/core/exact_pushsum.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/exact_pushsum.cpp.o.d"
  "/root/repo/src/core/freq_static.cpp" "src/CMakeFiles/anonet.dir/core/freq_static.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/freq_static.cpp.o.d"
  "/root/repo/src/core/history_tree.cpp" "src/CMakeFiles/anonet.dir/core/history_tree.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/history_tree.cpp.o.d"
  "/root/repo/src/core/lifting_demo.cpp" "src/CMakeFiles/anonet.dir/core/lifting_demo.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/lifting_demo.cpp.o.d"
  "/root/repo/src/core/metropolis.cpp" "src/CMakeFiles/anonet.dir/core/metropolis.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/metropolis.cpp.o.d"
  "/root/repo/src/core/minbase_agent.cpp" "src/CMakeFiles/anonet.dir/core/minbase_agent.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/minbase_agent.cpp.o.d"
  "/root/repo/src/core/pushsum.cpp" "src/CMakeFiles/anonet.dir/core/pushsum.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/pushsum.cpp.o.d"
  "/root/repo/src/core/uniform_consensus.cpp" "src/CMakeFiles/anonet.dir/core/uniform_consensus.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/core/uniform_consensus.cpp.o.d"
  "/root/repo/src/dynamics/connectivity.cpp" "src/CMakeFiles/anonet.dir/dynamics/connectivity.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/dynamics/connectivity.cpp.o.d"
  "/root/repo/src/dynamics/schedules.cpp" "src/CMakeFiles/anonet.dir/dynamics/schedules.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/dynamics/schedules.cpp.o.d"
  "/root/repo/src/fibration/fibration.cpp" "src/CMakeFiles/anonet.dir/fibration/fibration.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/fibration/fibration.cpp.o.d"
  "/root/repo/src/fibration/minimum_base.cpp" "src/CMakeFiles/anonet.dir/fibration/minimum_base.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/fibration/minimum_base.cpp.o.d"
  "/root/repo/src/fibration/partition.cpp" "src/CMakeFiles/anonet.dir/fibration/partition.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/fibration/partition.cpp.o.d"
  "/root/repo/src/functions/functions.cpp" "src/CMakeFiles/anonet.dir/functions/functions.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/functions/functions.cpp.o.d"
  "/root/repo/src/graph/analysis.cpp" "src/CMakeFiles/anonet.dir/graph/analysis.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/graph/analysis.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/anonet.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/anonet.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/anonet.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/CMakeFiles/anonet.dir/graph/isomorphism.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/graph/isomorphism.cpp.o.d"
  "/root/repo/src/linalg/kernel.cpp" "src/CMakeFiles/anonet.dir/linalg/kernel.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/linalg/kernel.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/anonet.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/perron.cpp" "src/CMakeFiles/anonet.dir/linalg/perron.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/linalg/perron.cpp.o.d"
  "/root/repo/src/runtime/convergence.cpp" "src/CMakeFiles/anonet.dir/runtime/convergence.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/runtime/convergence.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/anonet.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/anonet.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/support/bigint.cpp" "src/CMakeFiles/anonet.dir/support/bigint.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/support/bigint.cpp.o.d"
  "/root/repo/src/support/farey.cpp" "src/CMakeFiles/anonet.dir/support/farey.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/support/farey.cpp.o.d"
  "/root/repo/src/support/rational.cpp" "src/CMakeFiles/anonet.dir/support/rational.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/support/rational.cpp.o.d"
  "/root/repo/src/views/base_extraction.cpp" "src/CMakeFiles/anonet.dir/views/base_extraction.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/views/base_extraction.cpp.o.d"
  "/root/repo/src/views/view_registry.cpp" "src/CMakeFiles/anonet.dir/views/view_registry.cpp.o" "gcc" "src/CMakeFiles/anonet.dir/views/view_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
