file(REMOVE_RECURSE
  "libanonet.a"
)
