# Empty dependencies file for anonet.
# This may be replaced when dependencies are built.
