#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "anonet::anonet" for configuration "RelWithDebInfo"
set_property(TARGET anonet::anonet APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(anonet::anonet PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libanonet.a"
  )

list(APPEND _cmake_import_check_targets anonet::anonet )
list(APPEND _cmake_import_check_files_for_anonet::anonet "${_IMPORT_PREFIX}/lib/libanonet.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
