// Probe — the Section 6 open question: which computability results survive
// when the finite-dynamic-diameter assumption is relaxed to "never becomes
// permanently split"?
//
// The paper: the Metropolis family converges under the weak assumption by
// Moreau's theorem; for Push-Sum / the outdegree-awareness model "Moreau's
// theorem does not apply" and the question is open. We probe it on a
// GrowingGapSchedule — communication bursts with exponentially growing
// silent gaps, so every window bound is eventually violated — measuring the
// error after each burst for Metropolis, the degree-oblivious uniform step,
// and Push-Sum.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/metropolis.hpp"
#include "core/pushsum.hpp"
#include "core/uniform_consensus.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

namespace {

constexpr Vertex kN = 6;
constexpr int kBurst = 3;

template <typename Agent>
double error_of(const Executor<Agent>& exec, double truth) {
  double error = 0.0;
  for (const Agent& agent : exec.agents()) {
    error = std::max(error, std::abs(agent.output() - truth));
  }
  return error;
}

}  // namespace

int main() {
  // Inputs 1, 0, ..., 0: truth = 1/n.
  const double truth = 1.0 / static_cast<double>(kN);
  auto make_schedule = [] {
    return std::make_shared<GrowingGapSchedule>(bidirectional_ring(kN),
                                                kBurst, 2);
  };
  std::vector<MetropolisAgent> metropolis_agents;
  std::vector<UniformWeightAgent> uniform_agents;
  std::vector<PushSumAgent> pushsum_agents;
  for (Vertex v = 0; v < kN; ++v) {
    metropolis_agents.emplace_back(v == 0 ? 1.0 : 0.0);
    uniform_agents.emplace_back(v == 0 ? 1.0 : 0.0, kN);
    pushsum_agents.emplace_back(v == 0 ? 1.0 : 0.0, 1.0);
  }
  Executor<MetropolisAgent> metropolis(make_schedule(),
                                       std::move(metropolis_agents),
                                       CommModel::kOutdegreeAware);
  Executor<UniformWeightAgent> uniform(make_schedule(),
                                       std::move(uniform_agents),
                                       CommModel::kSymmetricBroadcast);
  Executor<PushSumAgent> pushsum(make_schedule(), std::move(pushsum_agents),
                                 CommModel::kOutdegreeAware);

  std::printf(
      "Weak connectivity probe — 6-ring, %d-round bursts, gaps 2, 4, 8, ... "
      "(no finite dynamic diameter)\n\n",
      kBurst);
  std::printf("%8s %8s | %12s %12s %12s\n", "round", "burst#", "Metropolis",
              "uniform 1/N", "Push-Sum");
  auto schedule = make_schedule();
  int burst_count = 0;
  bool was_in_burst = false;
  const int horizon = 3000;
  for (int round = 1; round <= horizon; ++round) {
    metropolis.step();
    uniform.step();
    pushsum.step();
    const bool in_burst = schedule->in_burst(round);
    if (was_in_burst && !in_burst) {
      ++burst_count;
      std::printf("%8d %8d | %12.3e %12.3e %12.3e\n", round, burst_count,
                  error_of(metropolis, truth), error_of(uniform, truth),
                  error_of(pushsum, truth));
    }
    was_in_burst = in_burst;
  }
  std::printf(
      "\nShape: each burst contracts the disagreement for all three —\n"
      "Metropolis/uniform by Moreau's theorem (the paper's positive answer "
      "for the symmetric family), and empirically Push-Sum as well: its "
      "column-stochastic products keep mixing whenever communication "
      "resumes, suggesting the Section 6 open question has a hopeful "
      "answer for this schedule family (bursts of full connectivity). A "
      "proof — or an adversarial counterexample with partial bursts — is "
      "future work.\n");
  return 0;
}
