// M1 — google-benchmark microbenchmarks for the substrates: minimum base,
// fibre-equation kernel solve, view interning, executor round throughput,
// Farey rounding. Not a paper artifact; keeps the costs of the simulator
// building blocks visible while the library evolves.

#include <benchmark/benchmark.h>

#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "core/freq_static.hpp"
#include "dynamics/schedules.hpp"
#include "fibration/minimum_base.hpp"
#include "graph/generators.hpp"
#include "linalg/kernel.hpp"
#include "runtime/executor.hpp"
#include "support/farey.hpp"

namespace {

using namespace anonet;

void BM_MinimumBase(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const LiftedGraph lift = random_lift(random_strongly_connected(4, 4, 1),
                                       std::vector<int>(4, n / 4), 2);
  std::vector<int> labels(static_cast<std::size_t>(lift.graph.vertex_count()));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimum_base(lift.graph, labels));
  }
}
BENCHMARK(BM_MinimumBase)->Arg(16)->Arg(64)->Arg(256);

void BM_FibreKernelSolve(benchmark::State& state) {
  const auto m = static_cast<Vertex>(state.range(0));
  const Digraph base = random_strongly_connected(m, 2 * m, 3);
  const std::vector<int> outdegrees = outdegree_labels(base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        positive_coprime_kernel_vector(fibre_matrix(base, outdegrees)));
  }
}
BENCHMARK(BM_FibreKernelSolve)->Arg(4)->Arg(8)->Arg(16);

void BM_ViewRoundAndExtract(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto registry = std::make_shared<ViewRegistry>();
    auto codec = std::make_shared<LabelCodec>();
    std::vector<MinBaseAgent> agents;
    for (Vertex v = 0; v < n; ++v) {
      agents.emplace_back(registry, codec, v % 2, CommModel::kSymmetricBroadcast);
    }
    Executor<MinBaseAgent> exec(
        std::make_shared<StaticSchedule>(bidirectional_ring(n)),
        std::move(agents), CommModel::kSymmetricBroadcast);
    state.ResumeTiming();
    exec.run(n + 6);
    benchmark::DoNotOptimize(exec.agent(0).candidate().plausible);
  }
}
BENCHMARK(BM_ViewRoundAndExtract)->Arg(6)->Arg(10)->Arg(14);

void BM_PushSumRound(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  std::vector<FrequencyPushSumAgent> agents;
  for (Vertex v = 0; v < n; ++v) agents.emplace_back(v % 5);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(n, 3, 4),
      std::move(agents), CommModel::kOutdegreeAware);
  for (auto _ : state) {
    exec.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushSumRound)->Arg(16)->Arg(64)->Arg(256);

void BM_FareyRounding(benchmark::State& state) {
  const double value = 0.3333333314159;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nearest_rational(value, static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_FareyRounding)->Arg(16)->Arg(1024)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
