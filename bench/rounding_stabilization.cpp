// Experiment F4 — Corollary 5.3: with a known bound N >= n, rounding the
// Push-Sum frequency estimates to Q_N turns asymptotic convergence into
// exact finite-time computation, with stabilization in O(n^{2D} D log N)
// rounds (distinct elements of Q_N are >= 1/N^2 apart, so the log(1/eps)
// of Theorem 5.2 becomes ~2 log N).
//
// We sweep the bound N for fixed inputs and report the first round from
// which every agent's rounded frequency is exact and stays exact — the
// log N growth is the paper's predicted shape.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

namespace {

int lock_round(Vertex n, std::uint32_t bound, int horizon) {
  std::vector<std::int64_t> inputs;
  for (Vertex v = 0; v < n; ++v) inputs.push_back(v % 3 == 0 ? 1 : 0);
  const Frequency truth = Frequency::of(inputs);
  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(
          n, 3, static_cast<std::uint64_t>(n) * 7 + 1),
      std::move(agents), CommModel::kOutdegreeAware);
  int stable_since = -1;
  for (int round = 1; round <= horizon; ++round) {
    exec.step();
    bool all_locked = true;
    for (const FrequencyPushSumAgent& agent : exec.agents()) {
      const auto rounded = agent.rounded_frequency(bound);
      if (!rounded.has_value() || !(*rounded == truth)) {
        all_locked = false;
        break;
      }
    }
    if (!all_locked) {
      stable_since = -1;
    } else if (stable_since == -1) {
      stable_since = round;
    }
  }
  return stable_since;
}

}  // namespace

int main() {
  std::printf(
      "F4 — exact frequency lock via Q_N rounding: stabilization round vs "
      "the size bound N\n\n");
  std::printf("%6s |", "n");
  const int multipliers[] = {1, 2, 4, 8, 16, 32};
  for (int m : multipliers) std::printf(" N=%2dn  ", m);
  std::printf("\n");
  for (Vertex n : {6, 9, 12}) {
    std::printf("%6d |", n);
    for (int m : multipliers) {
      const int round =
          lock_round(n, static_cast<std::uint32_t>(m) * n, 4000);
      std::printf("  %-7d", round);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape: along each row the lock round grows ~linearly in log N "
      "(each column doubles N); exactness itself never breaks — the rounded "
      "value is the true frequency from the lock round on.\n");
  return 0;
}
