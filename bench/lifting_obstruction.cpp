// Experiment F6 — Section 4.1: the impossibility mechanism, executed.
//
// For frequency-equivalent inputs v (n = 6) and w (m = 12) we build the ring
// fibrations R^6 -> R^p <- R^12, run the strongest algorithm in the library
// on all three rings, and verify round by round that both lifted executions
// are fibrewise copies of the base execution (Lemma 3.1). Consequently any
// algorithm's outputs on v and w coincide — which is fatal for sum and
// count (f(v) != f(w)) and harmless for frequency-based functions. This is
// the paper's negative half as a measurement rather than an assertion.

#include <cstdio>
#include <vector>

#include "core/lifting_demo.hpp"

using namespace anonet;

int main() {
  const std::vector<std::int64_t> v{1, 2, 1, 2, 1, 2};
  const std::vector<std::int64_t> w{1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2};
  struct Target {
    const char* name;
    SymmetricFunction f;
  };
  const Target targets[] = {
      {"sum", sum_function()},
      {"count (= n)", count_function()},
      {"average", average_function()},
      {"max", max_function()},
  };

  std::printf(
      "F6 — lifting obstruction on rings: v = (1,2)^3 (n=6), w = (1,2)^6 "
      "(m=12)\n\n");
  std::printf("%-26s %-14s %6s %10s %10s %10s  %s\n", "model", "function", "p",
              "f(v)", "f(w)", "lifting", "verdict");
  bool all_verified = true;
  for (CommModel model :
       {CommModel::kSymmetricBroadcast, CommModel::kOutdegreeAware,
        CommModel::kOutputPortAware}) {
    for (const Target& target : targets) {
      const LiftingObstruction result =
          demonstrate_ring_obstruction(v, w, model, target.f, 16);
      const bool blocked = !(result.f_of_v == result.f_of_w);
      all_verified = all_verified && result.applicable &&
                     result.lifting_verified;
      std::printf("%-26s %-14s %6d %10s %10s %10s  %s\n",
                  std::string(to_string(model)).c_str(), target.name, result.p,
                  result.f_of_v.to_string().c_str(),
                  result.f_of_w.to_string().c_str(),
                  result.lifting_verified ? "verified" : "BROKEN",
                  blocked ? "f UNCOMPUTABLE (outputs forced equal)"
                          : "no obstruction (f(v) = f(w))");
    }
  }
  std::printf(
      "\n%s. Every multiset-based-but-not-frequency-based function is forced "
      "to the same output on v and w although the true values differ: no "
      "algorithm in these models computes it, with or without a bound on n "
      "(Theorem 4.1, Corollary 4.2).\n",
      all_verified ? "Lemma 3.1 verified on every execution pair"
                   : "LIFTING VIOLATION (simulator bug)");
  return all_verified ? 0 : 1;
}
