// End-to-end campaign benchmark — emits BENCH_campaign.json.
//
// Runs the "tables" grid (both verdict tables of the paper) plus the
// "adversarial" grid (explicit agents pinned against the worst-case
// schedules) through campaign::Runner, and summarizes the outcome: per
// suite the cell counts by verdict, the paper comparison for the table
// suites, and aggregate message/bandwidth totals from the arena. Wall
// time is reported for the campaign as a whole, not per cell, so the
// record-level data stays deterministic.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/metrics.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "support/jsonl.hpp"
#include "support/thread_pool.hpp"

using namespace anonet;
using namespace anonet::campaign;

namespace {

struct SuiteSummary {
  std::string suite;
  int cells = 0;
  int ok = 0;
  int skipped = 0;
  int failed = 0;
  int exact = 0;
  int approximate = 0;  // success without exact stabilization
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t payload = 0;
};

void fold(const std::vector<CellRecord>& records,
          std::vector<SuiteSummary>& suites) {
  for (const CellRecord& record : records) {
    SuiteSummary* summary = nullptr;
    for (SuiteSummary& s : suites) {
      if (s.suite == record.suite) summary = &s;
    }
    if (summary == nullptr) {
      suites.push_back({});
      summary = &suites.back();
      summary->suite = record.suite;
    }
    ++summary->cells;
    if (record.verdict == "ok") ++summary->ok;
    if (record.verdict == "skipped") ++summary->skipped;
    if (record.verdict == "failed") ++summary->failed;
    if (record.exact) ++summary->exact;
    if (record.success && !record.exact) ++summary->approximate;
    summary->rounds += record.rounds;
    summary->messages += record.messages;
    summary->payload += record.payload;
  }
}

}  // namespace

int main() {
  const auto started = std::chrono::steady_clock::now();

  RunnerOptions options;
  options.threads = ThreadPool::hardware_threads();
  options.resume = false;
  const Runner runner(options);

  std::printf("campaign bench: running 'tables' grid...\n");
  const std::vector<CellRecord> tables = runner.run(Grid::preset("tables"));
  std::printf("campaign bench: running 'adversarial' grid...\n");
  const std::vector<CellRecord> adversarial =
      runner.run(Grid::preset("adversarial"));

  std::vector<SuiteSummary> suites;
  fold(tables, suites);
  fold(adversarial, suites);

  const TableComparison table1 = compare_table(tables, "table1");
  const TableComparison table2 = compare_table(tables, "table2");
  std::printf("\n%s\n%s\n", render_table(table1).c_str(),
              render_table(table2).c_str());

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  FILE* out = std::fopen("BENCH_campaign.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_campaign.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"hardware_threads\": %d,\n",
               ThreadPool::hardware_threads());
  std::fprintf(out, "  \"wall_seconds\": %.3f,\n", wall_seconds);
  std::fprintf(out, "  \"table1_matches_paper\": %s,\n",
               table1.all_match ? "true" : "false");
  std::fprintf(out, "  \"table2_matches_paper\": %s,\n",
               table2.all_match ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < suites.size(); ++i) {
    const SuiteSummary& s = suites[i];
    JsonObject o;
    o.field("suite", s.suite)
        .field("cells", s.cells)
        .field("ok", s.ok)
        .field("skipped", s.skipped)
        .field("failed", s.failed)
        .field("exact", s.exact)
        .field("approximate", s.approximate)
        .field("rounds", s.rounds)
        .field("messages", s.messages)
        .field("payload_units", s.payload);
    std::fprintf(out, "    %s%s\n", o.str().c_str(),
                 i + 1 < suites.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  bool failures = false;
  for (const SuiteSummary& s : suites) failures = failures || s.failed > 0;
  std::printf("wrote BENCH_campaign.json (%zu suites, %.1fs)\n",
              suites.size(), wall_seconds);
  if (!table1.all_match || !table2.all_match || failures) {
    std::printf("MISMATCH or failed cells — see above.\n");
    return 1;
  }
  return 0;
}
