// End-to-end campaign benchmark — emits BENCH_campaign.json.
//
// Runs the "tables" grid (both verdict tables of the paper), the
// "adversarial" grid (explicit agents pinned against the worst-case
// schedules) and the "faults" grid (the perturbation scenario zoo —
// asynchronous starts, crash-stop, message drops over churning
// topologies) through campaign::Runner, and summarizes the outcome: per
// suite the cell counts by verdict, the paper comparison for the table
// suites, and aggregate message/bandwidth totals from the arena. Cells
// are timed individually (in memory only — no JSONL is written, so the
// record-level determinism guarantee is untouched) to score the sharding
// policies: the shard-imbalance block reports max/mean shard wall time
// for the 4-way cost (LPT) and index splits over the measured costs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/cost_model.hpp"
#include "campaign/metrics.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "support/jsonl.hpp"
#include "support/thread_pool.hpp"

using namespace anonet;
using namespace anonet::campaign;

namespace {

struct SuiteSummary {
  std::string suite;
  int cells = 0;
  int ok = 0;
  int skipped = 0;
  int failed = 0;
  int timeouts = 0;
  int expected_failures = 0;
  int prediction_mismatches = 0;  // predicted to break, succeeded anyway
  int exact = 0;
  int approximate = 0;  // success without exact stabilization
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t payload = 0;
};

void fold(const std::vector<CellRecord>& records,
          std::vector<SuiteSummary>& suites) {
  for (const CellRecord& record : records) {
    SuiteSummary* summary = nullptr;
    for (SuiteSummary& s : suites) {
      if (s.suite == record.suite) summary = &s;
    }
    if (summary == nullptr) {
      suites.push_back({});
      summary = &suites.back();
      summary->suite = record.suite;
    }
    ++summary->cells;
    if (record.verdict == "ok") ++summary->ok;
    if (record.verdict == "skipped") ++summary->skipped;
    if (record.verdict == "failed") ++summary->failed;
    if (record.verdict == "timeout") ++summary->timeouts;
    if (record.verdict == "expected_failure") ++summary->expected_failures;
    if (record.predicted && record.verdict == "ok" && record.success) {
      ++summary->prediction_mismatches;
    }
    if (record.exact) ++summary->exact;
    if (record.success && !record.exact) ++summary->approximate;
    summary->rounds += record.rounds;
    summary->messages += record.messages;
    summary->payload += record.payload;
  }
}

// max/mean shard wall time of `assignment` over the measured costs — 1.0
// is a perfect split, `shards` the degenerate everything-on-one-shard one.
double imbalance(const std::vector<Cell>& cells, const CostModel& model,
                 const std::vector<int>& assignment, int shards) {
  std::vector<double> load(static_cast<std::size_t>(shards), 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    load[static_cast<std::size_t>(assignment[i])] += model.cost(cells[i]);
  }
  double total = 0.0;
  double max_load = 0.0;
  for (double l : load) {
    total += l;
    max_load = std::max(max_load, l);
  }
  return total > 0.0 ? max_load / (total / shards) : 1.0;
}

}  // namespace

int main() {
  const auto started = std::chrono::steady_clock::now();

  RunnerOptions options;
  options.threads = ThreadPool::hardware_threads();
  options.resume = false;
  options.include_timings = true;  // in-memory wall_ms feeds the cost model
  const Runner runner(options);

  std::printf("campaign bench: running 'tables' grid...\n");
  const std::vector<CellRecord> tables = runner.run(Grid::preset("tables"));
  std::printf("campaign bench: running 'adversarial' grid...\n");
  const std::vector<CellRecord> adversarial =
      runner.run(Grid::preset("adversarial"));
  std::printf("campaign bench: running 'faults' grid...\n");
  const std::vector<CellRecord> faults = runner.run(Grid::preset("faults"));

  std::vector<SuiteSummary> suites;
  fold(tables, suites);
  fold(adversarial, suites);
  fold(faults, suites);

  const TableComparison table1 = compare_table(tables, "table1");
  const TableComparison table2 = compare_table(tables, "table2");
  std::printf("\n%s\n%s\n", render_table(table1).c_str(),
              render_table(table2).c_str());

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  // Score the sharding policies on the measured per-cell wall times: how
  // uneven a 4-way split of this campaign would be under each policy.
  CostModel measured;
  for (const CellRecord& record : tables) {
    if (record.wall_ms >= 0.0) measured.set_measured(record.key, record.wall_ms);
  }
  for (const CellRecord& record : adversarial) {
    if (record.wall_ms >= 0.0) measured.set_measured(record.key, record.wall_ms);
  }
  for (const CellRecord& record : faults) {
    if (record.wall_ms >= 0.0) measured.set_measured(record.key, record.wall_ms);
  }
  std::vector<Cell> cells = Grid::preset("tables").expand();
  for (const char* extra_grid : {"adversarial", "faults"}) {
    const std::vector<Cell> extra = Grid::preset(extra_grid).expand();
    cells.insert(cells.end(), extra.begin(), extra.end());
  }
  constexpr int kShards = 4;
  const std::vector<int> by_cost =
      assign_shards_by_cost(cells, measured, kShards);
  std::vector<int> by_index(cells.size(), 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    by_index[i] = static_cast<int>(i % kShards);
  }
  const double cost_imbalance = imbalance(cells, measured, by_cost, kShards);
  const double index_imbalance = imbalance(cells, measured, by_index, kShards);
  std::printf("shard imbalance (max/mean over %d shards): cost %.3f, "
              "index %.3f\n",
              kShards, cost_imbalance, index_imbalance);

  FILE* out = std::fopen("BENCH_campaign.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_campaign.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"hardware_threads\": %d,\n",
               ThreadPool::hardware_threads());
  std::fprintf(out, "  \"wall_seconds\": %.3f,\n", wall_seconds);
  std::fprintf(out, "  \"table1_matches_paper\": %s,\n",
               table1.all_match ? "true" : "false");
  std::fprintf(out, "  \"table2_matches_paper\": %s,\n",
               table2.all_match ? "true" : "false");
  std::fprintf(out, "  \"shard_imbalance\": {\"shards\": %d, "
               "\"cost_max_over_mean\": %.4f, "
               "\"index_max_over_mean\": %.4f},\n",
               kShards, cost_imbalance, index_imbalance);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < suites.size(); ++i) {
    const SuiteSummary& s = suites[i];
    JsonObject o;
    o.field("suite", s.suite)
        .field("cells", s.cells)
        .field("ok", s.ok)
        .field("skipped", s.skipped)
        .field("failed", s.failed)
        .field("timeouts", s.timeouts)
        .field("expected_failures", s.expected_failures)
        .field("prediction_mismatches", s.prediction_mismatches)
        .field("exact", s.exact)
        .field("approximate", s.approximate)
        .field("rounds", s.rounds)
        .field("messages", s.messages)
        .field("payload_units", s.payload);
    std::fprintf(out, "    %s%s\n", o.str().c_str(),
                 i + 1 < suites.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  bool failures = false;
  for (const SuiteSummary& s : suites) {
    failures = failures || s.failed > 0 || s.prediction_mismatches > 0;
  }
  std::printf("wrote BENCH_campaign.json (%zu suites, %.1fs)\n",
              suites.size(), wall_seconds);
  if (!table1.all_match || !table2.all_match || failures) {
    std::printf("MISMATCH, failed cells, or predicted breakdowns that "
                "succeeded — see above.\n");
    return 1;
  }
  return 0;
}
