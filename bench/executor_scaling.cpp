// Round-engine scaling benchmark — emits BENCH_executor.json.
//
// Two sweeps, both on outdegree-aware Push-Sum (the workload behind the
// Theorem 5.2 convergence experiments):
//   (a) rounds/sec and messages/sec vs n on a static bidirectional ring,
//       comparing the flat-arena engine against `legacy`, a faithful copy of
//       the seed executor (per-round nested inbox allocation, per-round
//       graph copy via at(t), per-round re-validation, shared mt19937_64);
//   (b) serial vs pooled thread scaling 1/2/4/8 at n in {1e3, 1e4, 1e5};
//   (c) block-grain sweep at n = 1e4 (set_block_grain override vs the
//       adaptive policy), sizing the claim-amortization sweet spot.
//
// Regenerate with scripts/bench.sh (Release build); interpretation notes in
// docs/round_engine.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"
#include "support/thread_pool.hpp"

using namespace anonet;

namespace {

// The seed implementation's round loop, kept verbatim (modulo the span
// receive adapter) as the performance baseline.
template <typename Alg>
class LegacyExecutor {
 public:
  LegacyExecutor(DynamicGraphPtr network, std::vector<Alg> agents,
                 CommModel model, std::uint64_t shuffle_seed = 0x5eedull)
      : network_(std::move(network)),
        agents_(std::move(agents)),
        model_(model),
        rng_(shuffle_seed) {}

  void step() {
    using Message = typename Alg::Message;
    const int t = rounds_ + 1;
    const Digraph g = network_->at(t);  // per-round copy, as in the seed
    if (!g.has_all_self_loops()) throw std::logic_error("missing self-loop");
    const auto n = static_cast<std::size_t>(g.vertex_count());
    std::vector<std::vector<Message>> inbox(n);  // per-round allocation
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const auto out = g.out_edges(v);
      const int d = static_cast<int>(out.size());
      const Alg& agent = agents_[static_cast<std::size_t>(v)];
      const int visible = sees_outdegree(model_) ? d : 0;
      const Message message = agent.send(visible, 0);
      for (EdgeId id : out) {
        inbox[static_cast<std::size_t>(g.edge(id).target)].push_back(message);
      }
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      auto& messages = inbox[static_cast<std::size_t>(v)];
      std::shuffle(messages.begin(), messages.end(), rng_);
      delivered_ += static_cast<std::int64_t>(messages.size());
      agents_[static_cast<std::size_t>(v)].receive(
          std::span<const Message>(messages));
    }
    ++rounds_;
  }

  void run(int rounds) {
    for (int i = 0; i < rounds; ++i) step();
  }
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }
  [[nodiscard]] const std::vector<Alg>& agents() const { return agents_; }

 private:
  DynamicGraphPtr network_;
  std::vector<Alg> agents_;
  CommModel model_;
  std::mt19937_64 rng_;
  int rounds_ = 0;
  std::int64_t delivered_ = 0;
};

std::vector<PushSumAgent> make_agents(Vertex n) {
  std::vector<PushSumAgent> agents;
  agents.reserve(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    agents.emplace_back(static_cast<double>(v % 17), 1.0);
  }
  return agents;
}

// Rounds chosen so every configuration moves a comparable message volume.
int rounds_for(Vertex n) {
  const std::int64_t deliveries_per_round = 3ll * n;  // ring + self-loops
  const std::int64_t target = 6'000'000;
  return static_cast<int>(
      std::max<std::int64_t>(3, target / deliveries_per_round));
}

struct Row {
  std::string workload;
  std::string engine;
  Vertex n = 0;
  int threads = 1;
  int rounds = 0;
  double seconds = 0.0;
  std::int64_t messages = 0;
  double checksum = 0.0;  // Σ agent outputs — guards against dead-code elim
  std::int64_t grain = 0;  // forced block grain; 0 = adaptive policy
};

// Best-of-3: each repetition is deterministic (same checksum), so the
// minimum isolates engine cost from scheduler noise on shared hosts.
template <typename Run>
Row timed(const char* workload, const char* engine, Vertex n, int threads,
          int rounds, Run&& run) {
  Row row{workload, engine, n, threads, rounds, 0.0, 0, 0.0};
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    row.messages = 0;
    const auto start = std::chrono::steady_clock::now();
    row.checksum = run(row);
    best = std::min(
        best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  row.seconds = best;
  return row;
}

void print_row(const Row& row) {
  std::printf("  %-12s %-6s n=%-7d threads=%d  %8.3fs  %10.0f rounds/s  %12.3e msgs/s\n",
              row.workload.c_str(), row.engine.c_str(), row.n, row.threads,
              row.seconds, row.rounds / row.seconds,
              static_cast<double>(row.messages) / row.seconds);
}

}  // namespace

int main() {
  std::vector<Row> rows;

  // Sweep (a): n scaling, arena vs legacy, single thread.
  std::printf("executor_scaling (a) — static bidirectional ring, Push-Sum\n");
  for (Vertex n : {100, 1000, 10000, 100000}) {
    auto net = std::make_shared<StaticSchedule>(bidirectional_ring(n));
    const int rounds = rounds_for(n);

    rows.push_back(timed("ring", "arena", n, 1, rounds, [&](Row& row) {
      Executor<PushSumAgent> exec(net, make_agents(n),
                                  CommModel::kOutdegreeAware);
      exec.run(rounds);
      row.messages = exec.stats().messages_delivered;
      double sum = 0.0;
      for (const auto& a : exec.agents()) sum += a.output();
      return sum;
    }));
    print_row(rows.back());

    rows.push_back(timed("ring", "legacy", n, 1, rounds, [&](Row& row) {
      LegacyExecutor<PushSumAgent> exec(net, make_agents(n),
                                        CommModel::kOutdegreeAware);
      exec.run(rounds);
      row.messages = exec.delivered();
      double sum = 0.0;
      for (const auto& a : exec.agents()) sum += a.output();
      return sum;
    }));
    print_row(rows.back());
  }

  // Sweep (b): serial vs pooled across n. `serial` is the executor with no
  // pool (threads = 1); `pooled` rows share the identical engine with a
  // persistent worker pool, so the delta is pure pool overhead or speedup.
  std::printf("executor_scaling (b) — serial vs pooled (host has %d hardware threads)\n",
              ThreadPool::hardware_threads());
  for (Vertex n : {1000, 10000, 100000}) {
    auto net = std::make_shared<StaticSchedule>(bidirectional_ring(n));
    const int rounds = rounds_for(n);
    for (int threads : {1, 2, 4, 8}) {
      const char* engine = threads == 1 ? "serial" : "pooled";
      rows.push_back(timed("ring", engine, n, threads, rounds, [&](Row& row) {
        Executor<PushSumAgent> exec(net, make_agents(n),
                                    CommModel::kOutdegreeAware, 0x5eedull,
                                    threads);
        exec.run(rounds);
        row.messages = exec.stats().messages_delivered;
        double sum = 0.0;
        for (const auto& a : exec.agents()) sum += a.output();
        return sum;
      }));
      print_row(rows.back());
    }
  }

  // Sweep (c): block-grain sensitivity at n = 1e4. grain = 0 is the adaptive
  // policy (per-phase EWMA targeting ~128us per claim); forced grains map the
  // claim-amortization curve that policy navigates.
  const Vertex n_grain_sweep = 10000;
  const int grain_threads = std::min(4, ThreadPool::hardware_threads());
  std::printf("executor_scaling (c) — grain sweep at n=%d, threads=%d\n",
              n_grain_sweep, grain_threads);
  {
    auto net =
        std::make_shared<StaticSchedule>(bidirectional_ring(n_grain_sweep));
    const int rounds = rounds_for(n_grain_sweep);
    for (std::int64_t grain : {std::int64_t{64}, std::int64_t{256},
                               std::int64_t{1024}, std::int64_t{4096},
                               std::int64_t{0}}) {
      rows.push_back(timed("ring", "pooled", n_grain_sweep, grain_threads,
                           rounds, [&](Row& row) {
        row.grain = grain;
        Executor<PushSumAgent> exec(net, make_agents(n_grain_sweep),
                                    CommModel::kOutdegreeAware, 0x5eedull,
                                    grain_threads);
        exec.set_block_grain(grain);
        exec.run(rounds);
        row.messages = exec.stats().messages_delivered;
        double sum = 0.0;
        for (const auto& a : exec.agents()) sum += a.output();
        return sum;
      }));
      std::printf("  grain=%-5lld", static_cast<long long>(grain));
      print_row(rows.back());
    }
  }

  // Speedup summary at n = 10^4.
  double arena_1e4 = 0.0, legacy_1e4 = 0.0;
  for (const Row& row : rows) {
    if (row.n == 10000 && row.threads == 1 && row.workload == "ring") {
      if (row.engine == "arena" && arena_1e4 == 0.0) arena_1e4 = row.seconds;
      if (row.engine == "legacy") legacy_1e4 = row.seconds;
    }
  }
  if (arena_1e4 > 0.0 && legacy_1e4 > 0.0) {
    std::printf("speedup vs legacy at n=1e4: %.2fx\n", legacy_1e4 / arena_1e4);
  }

  FILE* out = std::fopen("BENCH_executor.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_executor.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"hardware_threads\": %d,\n  \"results\": [\n",
               ThreadPool::hardware_threads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"engine\": \"%s\", \"n\": %d, "
                 "\"threads\": %d, \"grain\": %lld, \"rounds\": %d, "
                 "\"seconds\": %.6f, \"rounds_per_sec\": %.2f, "
                 "\"messages_per_sec\": %.2f, \"checksum\": %.6f}%s\n",
                 row.workload.c_str(), row.engine.c_str(), row.n, row.threads,
                 static_cast<long long>(row.grain), row.rounds, row.seconds,
                 row.rounds / row.seconds,
                 static_cast<double>(row.messages) / row.seconds, row.checksum,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_executor.json (%zu rows)\n", rows.size());
  return 0;
}
