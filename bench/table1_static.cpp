// Regenerates Table 1 of the paper: computable function classes in static,
// strongly connected anonymous networks, for each communication model and
// each level of centralized help.
//
// For every cell we *measure* the strongest class by actually running the
// library's algorithm for that cell on a panel of networks against one
// representative function per class (max / average / sum) and checking exact
// stabilization on f(v). Negative cells are cross-checked by the executable
// lifting obstruction (bench/lifting_obstruction.cpp digs into those).

#include <cstdio>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "core/computability.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"

using namespace anonet;

namespace {

struct Panel {
  Digraph graph;
  std::vector<std::int64_t> values;
};

// Test networks per model: frequencies {1:1/3, 2:2/3}-style mixes on graphs
// with genuinely collapsible symmetry (lifts), plus irregular graphs.
std::vector<Panel> make_panel(CommModel model) {
  std::vector<Panel> panel;
  auto add = [&panel](Digraph g, std::vector<std::int64_t> v) {
    panel.push_back({std::move(g), std::move(v)});
  };
  if (model == CommModel::kSymmetricBroadcast) {
    add(bidirectional_ring(6), {1, 2, 1, 2, 1, 2});
    add(random_symmetric_connected(8, 4, 11), {4, 4, 4, 9, 9, 9, 4, 9});
    add(torus(2, 4), {0, 1, 0, 1, 0, 1, 0, 1});
  } else {
    add(bidirectional_ring(6), {1, 2, 1, 2, 1, 2});
    add(random_strongly_connected(7, 6, 3), {5, 5, 5, 2, 2, 2, 5});
    {
      const LiftedGraph lift =
          random_lift(random_strongly_connected(3, 3, 8), {3, 3, 3}, 2);
      std::vector<std::int64_t> values;
      for (Vertex v : lift.projection) values.push_back(v == 0 ? 7 : 3);
      add(lift.graph, std::move(values));
    }
  }
  return panel;
}

// Measures whether `f` is exactly computed on every panel network.
bool cell_computes(CommModel model, Knowledge knowledge,
                   const SymmetricFunction& f) {
  for (const Panel& panel : make_panel(model)) {
    const Vertex n = panel.graph.vertex_count();
    Attempt attempt;
    attempt.model = model;
    attempt.knowledge = knowledge;
    attempt.rounds = 3 * n + 10;
    std::vector<std::int64_t> inputs = panel.values;
    switch (knowledge) {
      case Knowledge::kNone:
        break;
      case Knowledge::kUpperBound:
        attempt.parameter = 2 * n;  // any bound >= n
        break;
      case Knowledge::kExactSize:
        attempt.parameter = n;
        break;
      case Knowledge::kLeaders:
        attempt.parameter = 1;
        inputs.clear();
        for (std::size_t i = 0; i < panel.values.size(); ++i) {
          inputs.push_back(encode_leader_input(panel.values[i], i == 0));
        }
        break;
    }
    const AttemptResult result = attempt_static(panel.graph, inputs, f, attempt);
    if (!result.success || result.stabilization_round < 0) return false;
  }
  return true;
}

std::string cell_label(CommModel model, Knowledge knowledge) {
  const bool set_based = cell_computes(model, knowledge, max_function());
  const bool freq_based = cell_computes(model, knowledge, average_function());
  const bool multi_based = cell_computes(model, knowledge, sum_function());
  if (multi_based && freq_based && set_based) return "multiset-based";
  if (freq_based && set_based) return "frequency-based";
  if (set_based) return "set-based";
  return "(nothing)";
}

}  // namespace

int main() {
  std::printf(
      "Table 1 — computable functions in static, strongly connected networks "
      "of n anonymous agents (measured)\n\n");
  const CommModel models[] = {
      CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
      CommModel::kSymmetricBroadcast, CommModel::kOutputPortAware};
  const Knowledge rows[] = {Knowledge::kNone, Knowledge::kUpperBound,
                            Knowledge::kExactSize, Knowledge::kLeaders};
  // Paper's claims, for side-by-side comparison.
  const char* paper[4][4] = {
      {"set-based", "frequency-based", "frequency-based", "frequency-based"},
      {"set-based", "frequency-based", "frequency-based", "frequency-based"},
      {"set-based", "multiset-based", "multiset-based", "multiset-based"},
      {"set-based", "multiset-based", "multiset-based", "multiset-based"},
  };

  std::printf("%-26s", "");
  for (CommModel model : models) {
    std::printf("| %-24s", std::string(to_string(model)).c_str());
  }
  std::printf("\n");
  for (int i = 0; i < 4 * 26 + 8; ++i) std::printf("-");
  std::printf("\n");

  bool all_match = true;
  for (int row = 0; row < 4; ++row) {
    std::printf("%-26s", std::string(to_string(rows[row])).c_str());
    for (int col = 0; col < 4; ++col) {
      const std::string measured = cell_label(models[col], rows[row]);
      const bool match = measured == paper[row][col];
      all_match = all_match && match;
      std::printf("| %-15s %-8s", measured.c_str(),
                  match ? "(=paper)" : "(DIFFERS)");
    }
    std::printf("\n");
  }
  std::printf(
      "\nEvery cell: strongest of {max: set-based, average: frequency-based, "
      "sum: multiset-based}\nexactly stabilized on a 3-network panel. "
      "%s\n",
      all_match ? "All 16 cells match the paper." : "MISMATCH — see above.");
  return all_match ? 0 : 1;
}
