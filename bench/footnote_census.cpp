// Experiment F7 — Table 1, footnote (a): with simple broadcast and n known,
// only set-based functions are computable for n >= 4, but "for smaller
// networks, the topology always allows for the recovery of the multi-set"
// (attributed to Jérémie Chalopin).
//
// Two agents are indistinguishable to every algorithm iff their networks
// share the same valued minimum base (equal views, Lemma 3.1/3.2). The
// footnote is thus equivalent to a *finite* statement we can check by
// exhaustive search: among all simple strongly connected n-vertex networks
// with self-loops and 2-valued inputs,
//   n <= 3:  any two networks with isomorphic valued minimum bases have the
//            same input multiset (so knowing n pins the multiset), while
//   n  = 4:  there exists a pair with isomorphic bases but different
//            multisets — an indistinguishable witness pair that kills every
//            multiset-based function beyond frequencies.
// This harness performs that search and prints the smallest witness.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "fibration/minimum_base.hpp"
#include "graph/analysis.hpp"
#include "graph/io.hpp"
#include "graph/isomorphism.hpp"

using namespace anonet;

namespace {

struct Candidate {
  Digraph graph;
  std::vector<int> values;
  std::vector<int> multiset;  // sorted input values
  MinimumBase base;
};

// All simple digraphs on n vertices with every self-loop present, strongly
// connected, with values from {0, 1} (up to complement: fix value[0] = 0).
std::vector<Candidate> enumerate(int n) {
  std::vector<std::pair<Vertex, Vertex>> slots;
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i != j) slots.emplace_back(i, j);
    }
  }
  std::vector<Candidate> result;
  const std::uint64_t edge_masks = std::uint64_t{1} << slots.size();
  for (std::uint64_t mask = 0; mask < edge_masks; ++mask) {
    Digraph g(n);
    for (Vertex v = 0; v < n; ++v) g.add_edge(v, v);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (mask & (std::uint64_t{1} << s)) {
        g.add_edge(slots[s].first, slots[s].second);
      }
    }
    if (!is_strongly_connected(g)) continue;
    for (int value_mask = 0; value_mask < (1 << n); value_mask += 2) {
      std::vector<int> values;
      for (int v = 0; v < n; ++v) values.push_back((value_mask >> v) & 1);
      Candidate candidate{g, values, values, minimum_base(g, values)};
      std::sort(candidate.multiset.begin(), candidate.multiset.end());
      result.push_back(std::move(candidate));
    }
  }
  return result;
}

// Finds a pair with isomorphic valued minimum bases but different input
// multisets; returns indices or (-1, -1).
std::pair<int, int> find_witness(const std::vector<Candidate>& candidates) {
  // Group by a cheap invariant before the expensive isomorphism test.
  std::map<std::tuple<Vertex, EdgeId, std::vector<int>>, std::vector<int>>
      groups;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::vector<int> base_values = candidates[i].base.values;
    std::sort(base_values.begin(), base_values.end());
    groups[{candidates[i].base.base.vertex_count(),
            candidates[i].base.base.edge_count(), std::move(base_values)}]
        .push_back(static_cast<int>(i));
  }
  for (const auto& [key, members] : groups) {
    for (std::size_t x = 0; x < members.size(); ++x) {
      for (std::size_t y = x + 1; y < members.size(); ++y) {
        const Candidate& a = candidates[static_cast<std::size_t>(members[x])];
        const Candidate& b = candidates[static_cast<std::size_t>(members[y])];
        if (a.multiset == b.multiset) continue;
        if (find_isomorphism(a.base.base, a.base.values, b.base.base,
                             b.base.values)
                .has_value()) {
          return {members[x], members[y]};
        }
      }
    }
  }
  return {-1, -1};
}

}  // namespace

int main() {
  std::printf(
      "F7 — footnote (a) of Table 1, by exhaustive search over simple "
      "strongly connected networks with self-loops and 2-valued inputs\n\n");
  for (int n = 2; n <= 4; ++n) {
    const std::vector<Candidate> candidates = enumerate(n);
    const auto [i, j] = find_witness(candidates);
    std::printf("n = %d: %6zu (network, valuation) pairs scanned -> %s\n", n,
                candidates.size(),
                i == -1 ? "no indistinguishable multiset-conflicting pair "
                          "(multiset recoverable, as the footnote claims)"
                        : "WITNESS FOUND (multiset NOT recoverable)");
    if (i != -1) {
      const Candidate& a = candidates[static_cast<std::size_t>(i)];
      const Candidate& b = candidates[static_cast<std::size_t>(j)];
      auto show = [](const Candidate& c, const char* name) {
        std::printf("\n  %s: values (", name);
        for (std::size_t v = 0; v < c.values.size(); ++v) {
          std::printf("%s%d", v == 0 ? "" : ",", c.values[v]);
        }
        std::printf("), multiset sum %d\n", [&] {
          int s = 0;
          for (int v : c.multiset) s += v;
          return s;
        }());
        std::printf("%s", to_edge_list(c.graph).c_str());
      };
      show(a, "network A");
      show(b, "network B");
      std::printf(
          "\n  Same valued minimum base (checked by isomorphism): every "
          "agent in A has a twin in B with identical views forever, yet the "
          "multisets differ — sum/count are uncomputable even knowing "
          "n = %d.\n",
          n);
      break;  // the smallest witness is the point; stop here
    }
  }
  return 0;
}
