// Ablation — measured message complexity across the library's algorithms.
//
// The paper contrasts its finite-state, bounded-bandwidth positive results
// with Di Luna & Viglietta's exact dynamic algorithm, which "uses an
// infinite number of states and an infinite bandwidth". This harness makes
// the bandwidth axis concrete on one static symmetric network, in *measured
// wire bits*: every executor runs under a metered channel
// (wire::ChannelPolicy::metered()), so each row is the canonical
// MessageTraits encoding size of what was actually sent that round — not a
// hand-maintained payload-unit estimate.
//
//   - gossip / frequency estimators: per-message bits plateau at
//     O(|support|) — the bounded-bandwidth regime;
//   - exact Push-Sum: rational shares whose denominators grow like d^t, so
//     the measured bits grow without bound — the "infinite bandwidth"
//     regime made visible on the wire;
//   - minimum base / history tree: the *mathematical* view grows
//     exponentially with the round, while the interned wire message
//     (a registry reference, docs/wire.md) stays O(log |registry|) bits.
//
// Emits BENCH_bandwidth.json with the sampled per-round measurements.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/exact_pushsum.hpp"
#include "core/gossip.hpp"
#include "core/history_tree.hpp"
#include "core/metropolis.hpp"
#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"
#include "wire/codecs.hpp"

using namespace anonet;

namespace {

struct Sample {
  std::string family;
  int round = 0;
  std::int64_t bits_sent = 0;
  std::int64_t max_message_bits = 0;
};

// Per-round bits for the printed round, straight from the meter.
template <typename A>
Sample sample(const char* family, const Executor<A>& exec, int round) {
  const wire::RoundBandwidth& rb = exec.bandwidth_meter().round(round);
  return Sample{family, round, rb.bits_sent, rb.max_message_bits};
}

}  // namespace

int main() {
  const Digraph g = random_symmetric_connected(8, 4, 5);
  const std::vector<std::int64_t> inputs{1, 1, 2, 2, 3, 3, 1, 2};
  const int n = g.vertex_count();
  const int d = diameter(g);
  std::printf(
      "Bandwidth ablation on one static symmetric network (n = %d, D = %d), "
      "measured wire bits sent network-wide per round\n\n",
      n, d);

  const auto schedule = std::make_shared<StaticSchedule>(g);
  const auto metered = wire::ChannelPolicy::metered();

  // Gossip (simple broadcast: the weakest model).
  std::vector<SetGossipAgent> gossip_agents;
  for (std::int64_t v : inputs) gossip_agents.emplace_back(v);
  Executor<SetGossipAgent> gossip_exec(schedule, std::move(gossip_agents),
                                       CommModel::kSimpleBroadcast);
  gossip_exec.set_channel_policy(metered);

  // Frequency Push-Sum (floating point: constant bits per known value).
  std::vector<FrequencyPushSumAgent> ps_agents;
  for (std::int64_t v : inputs) ps_agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> ps_exec(schedule, std::move(ps_agents),
                                          CommModel::kOutdegreeAware);
  ps_exec.set_channel_policy(metered);

  // Exact Push-Sum (rational shares: the unbounded-bandwidth regime).
  std::vector<ExactPushSumAgent> exact_agents;
  for (std::int64_t v : inputs) {
    exact_agents.emplace_back(Rational(v), Rational(1));
  }
  Executor<ExactPushSumAgent> exact_exec(schedule, std::move(exact_agents),
                                         CommModel::kOutdegreeAware);
  exact_exec.set_channel_policy(metered);

  // Frequency Metropolis (symmetric network, degree piggybacked).
  std::vector<FrequencyMetropolisAgent> metro_agents;
  for (std::int64_t v : inputs) metro_agents.emplace_back(v);
  Executor<FrequencyMetropolisAgent> metro_exec(
      schedule, std::move(metro_agents), CommModel::kOutdegreeAware);
  metro_exec.set_channel_policy(metered);

  // Minimum base, unbounded and windowed: the interned wire message is a
  // registry reference either way; only the mathematical tree differs.
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<MinBaseAgent> mb_agents, mb_window_agents;
  const int window = n + 2 * d;
  for (std::int64_t v : inputs) {
    mb_agents.emplace_back(registry, codec, v, CommModel::kOutdegreeAware);
    mb_window_agents.emplace_back(registry, codec, v,
                                  CommModel::kOutdegreeAware, window);
  }
  Executor<MinBaseAgent> mb_exec(schedule, std::move(mb_agents),
                                 CommModel::kOutdegreeAware);
  mb_exec.set_channel_policy(metered);
  Executor<MinBaseAgent> mbw_exec(schedule, std::move(mb_window_agents),
                                  CommModel::kOutdegreeAware);
  mbw_exec.set_channel_policy(metered);

  // History tree (symmetric model required; its own interning space).
  auto h_registry = std::make_shared<ViewRegistry>();
  auto h_codec = std::make_shared<LabelCodec>();
  std::vector<HistoryFrequencyAgent> h_agents;
  for (std::int64_t v : inputs) h_agents.emplace_back(h_registry, h_codec, v);
  Executor<HistoryFrequencyAgent> h_exec(schedule, std::move(h_agents),
                                         CommModel::kSymmetricBroadcast);
  h_exec.set_channel_policy(metered);

  std::vector<Sample> samples;
  std::printf("%6s | %7s %8s %9s %9s | %8s %8s | %14s %14s\n", "round",
              "gossip", "ps-freq", "exact-ps", "metro-fr", "minbase",
              "history", "view (math)", "view (capped)");
  for (int round = 1; round <= 3 * window; ++round) {
    gossip_exec.step();
    ps_exec.step();
    exact_exec.step();
    metro_exec.step();
    mb_exec.step();
    mbw_exec.step();
    h_exec.step();
    if (round % 4 != 0 && round != 1) continue;
    samples.push_back(sample("gossip", gossip_exec, round));
    samples.push_back(sample("freq-pushsum", ps_exec, round));
    samples.push_back(sample("exact-pushsum", exact_exec, round));
    samples.push_back(sample("freq-metropolis", metro_exec, round));
    samples.push_back(sample("minbase", mb_exec, round));
    samples.push_back(sample("minbase-window", mbw_exec, round));
    samples.push_back(sample("history", h_exec, round));
    const std::size_t base = samples.size() - 7;
    std::printf("%6d | %7lld %8lld %9lld %9lld | %8lld %8lld | %14.3e "
                "%14.3e\n",
                round, static_cast<long long>(samples[base].bits_sent),
                static_cast<long long>(samples[base + 1].bits_sent),
                static_cast<long long>(samples[base + 2].bits_sent),
                static_cast<long long>(samples[base + 3].bits_sent),
                static_cast<long long>(samples[base + 4].bits_sent),
                static_cast<long long>(samples[base + 6].bits_sent),
                registry->tree_size(mb_exec.agent(0).view()),
                registry->tree_size(mbw_exec.agent(0).view()));
  }
  std::printf(
      "\nShape: gossip and the frequency estimators plateau at O(|support|) "
      "bits per message; exact Push-Sum's rational shares grow without bound "
      "(the 'infinite bandwidth' regime, now measured on the wire); the "
      "minimum-base and history-tree messages stay near-constant because the "
      "wire format sends interned registry references while the mathematical "
      "view tree it names grows exponentially until the finite-state window "
      "caps it.\n");

  FILE* out = std::fopen("BENCH_bandwidth.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_bandwidth.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"n\": %d,\n  \"diameter\": %d,\n  \"results\": [\n",
               n, d);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"family\": \"%s\", \"round\": %d, \"bits_sent\": "
                 "%lld, \"max_message_bits\": %lld}%s\n",
                 s.family.c_str(), s.round,
                 static_cast<long long>(s.bits_sent),
                 static_cast<long long>(s.max_message_bits),
                 i + 1 == samples.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_bandwidth.json (%zu rows)\n", samples.size());
  return 0;
}
