// Ablation — message complexity across the library's algorithms.
//
// The paper contrasts its finite-state, bounded-bandwidth positive results
// with Di Luna & Viglietta's exact dynamic algorithm, which "uses an
// infinite number of states and an infinite bandwidth". This harness makes
// the bandwidth axis concrete on one static network:
//   - gossip: messages carry the known support (bounded by |Ω|);
//   - Push-Sum / Metropolis: constant-size per known value;
//   - distributed minimum base: the *mathematical* view message grows
//     exponentially with the round, while the interned simulator message is
//     constant — and the finite-state window variant caps even the
//     mathematical object, which is the paper's point.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/gossip.hpp"
#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

int main() {
  const Digraph g = random_strongly_connected(8, 6, 5);
  const std::vector<std::int64_t> inputs{1, 1, 2, 2, 3, 3, 1, 2};
  const int n = g.vertex_count();
  const int d = diameter(g);
  std::printf(
      "Bandwidth ablation on one static network (n = %d, D = %d), per-round "
      "payload units delivered network-wide\n\n",
      n, d);

  // Gossip.
  std::vector<SetGossipAgent> gossip_agents;
  for (std::int64_t v : inputs) gossip_agents.emplace_back(v);
  Executor<SetGossipAgent> gossip_exec(std::make_shared<StaticSchedule>(g),
                                       std::move(gossip_agents),
                                       CommModel::kSimpleBroadcast);
  // Push-Sum.
  std::vector<FrequencyPushSumAgent> ps_agents;
  for (std::int64_t v : inputs) ps_agents.emplace_back(v);
  Executor<FrequencyPushSumAgent> ps_exec(std::make_shared<StaticSchedule>(g),
                                          std::move(ps_agents),
                                          CommModel::kOutdegreeAware);
  // Minimum base, unbounded and windowed.
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<MinBaseAgent> mb_agents, mb_window_agents;
  const int window = n + 2 * d;
  for (std::int64_t v : inputs) {
    mb_agents.emplace_back(registry, codec, v, CommModel::kOutdegreeAware);
    mb_window_agents.emplace_back(registry, codec, v,
                                  CommModel::kOutdegreeAware, window);
  }
  Executor<MinBaseAgent> mb_exec(std::make_shared<StaticSchedule>(g),
                                 std::move(mb_agents),
                                 CommModel::kOutdegreeAware);
  Executor<MinBaseAgent> mbw_exec(std::make_shared<StaticSchedule>(g),
                                  std::move(mb_window_agents),
                                  CommModel::kOutdegreeAware);

  std::printf("%6s | %10s %12s | %14s %14s | %12s\n", "round", "gossip",
              "Push-Sum", "view (math)", "view (capped)", "registry");
  std::int64_t gossip_prev = 0, ps_prev = 0;
  for (int round = 1; round <= 3 * window; ++round) {
    gossip_exec.step();
    ps_exec.step();
    mb_exec.step();
    mbw_exec.step();
    if (round % 4 != 0 && round != 1) continue;
    const std::int64_t gossip_units =
        gossip_exec.stats().payload_units - gossip_prev;
    const std::int64_t ps_units = ps_exec.stats().payload_units - ps_prev;
    gossip_prev = gossip_exec.stats().payload_units;
    ps_prev = ps_exec.stats().payload_units;
    std::printf("%6d | %10lld %12lld | %14.3e %14.3e | %12zu\n", round,
                static_cast<long long>(gossip_units),
                static_cast<long long>(ps_units),
                registry->tree_size(mb_exec.agent(0).view()),
                registry->tree_size(mbw_exec.agent(0).view()),
                registry->size());
  }
  std::printf(
      "\nShape: gossip and Push-Sum payloads plateau at O(|support|) per "
      "message; the mathematical view tree grows exponentially with the "
      "round (the 'infinite bandwidth' regime) until the finite-state window "
      "caps it at its n+2D horizon — while the interned registry grows only "
      "polynomially, which is what makes the simulation tractable.\n");
  return 0;
}
