// Experiment F3 — Section 5: Metropolis averaging on symmetric networks.
// The paper cites a quadratic convergence rate for networks strongly
// connected in every round [10]. We measure rounds-to-ε against n and
// report the growth ratio (should be polynomial, ~n^2, not exponential).

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/metropolis.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

namespace {

int rounds_to_epsilon(Vertex n, bool dynamic, double eps, int cap) {
  std::vector<MetropolisAgent> agents;
  for (Vertex v = 0; v < n; ++v) {
    agents.emplace_back(v == 0 ? 1.0 : 0.0);  // worst-case concentrated mass
  }
  DynamicGraphPtr schedule;
  if (dynamic) {
    schedule = std::make_shared<RandomSymmetricSchedule>(
        n, 2, static_cast<std::uint64_t>(n));
  } else {
    schedule = std::make_shared<StaticSchedule>(bidirectional_ring(n));
  }
  Executor<MetropolisAgent> exec(schedule, std::move(agents),
                                 CommModel::kOutdegreeAware);
  const double truth = 1.0 / static_cast<double>(n);
  for (int round = 1; round <= cap; ++round) {
    exec.step();
    double error = 0.0;
    for (const MetropolisAgent& agent : exec.agents()) {
      error = std::max(error, std::abs(agent.output() - truth));
    }
    if (error <= eps) return round;
  }
  return -1;
}

}  // namespace

int main() {
  std::printf(
      "F3 — Metropolis averaging: rounds to eps vs n (symmetric networks)\n\n");
  const double eps = 1e-6;
  std::printf("%6s | %18s %14s | %18s %14s\n", "n", "static ring", "/(n^2)",
              "dynamic random", "/(n^2)");
  for (Vertex n : {4, 6, 8, 12, 16, 24}) {
    const int static_rounds = rounds_to_epsilon(n, false, eps, 200000);
    const int dynamic_rounds = rounds_to_epsilon(n, true, eps, 200000);
    std::printf("%6d | %18d %14.2f | %18d %14.2f\n", n, static_rounds,
                static_rounds / static_cast<double>(n) / n, dynamic_rounds,
                dynamic_rounds / static_cast<double>(n) / n);
  }
  std::printf(
      "\nShape: the /(n^2) column stays within a constant band on rings "
      "(quadratic convergence, [10]); the richly connected dynamic schedule "
      "converges faster.\n");
  return 0;
}
