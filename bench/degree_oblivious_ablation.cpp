// Ablation — what outdegree awareness is worth on symmetric networks.
//
// Section 5 contrasts Metropolis (needs the endpoint degrees, quadratic
// convergence [10]) with degree-oblivious variants [11, 24] "but its
// temporal complexity is in O(n^4)". We reproduce the contrast: both
// algorithms on the same symmetric rings, rounds until ε-agreement. The
// uniform step 1/N (core/uniform_consensus.hpp) stands in for the
// degree-oblivious family; a second sweep shows the extra cost of a loose
// bound N, which Metropolis by construction does not pay.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/metropolis.hpp"
#include "core/uniform_consensus.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

namespace {

constexpr double kEps = 1e-6;

template <typename Agent, typename Make>
int rounds_to_eps(Vertex n, Make make, CommModel model, int cap) {
  std::vector<Agent> agents;
  for (Vertex v = 0; v < n; ++v) agents.push_back(make(v));
  Executor<Agent> exec(std::make_shared<StaticSchedule>(bidirectional_ring(n)),
                       std::move(agents), model);
  const double truth = 1.0 / static_cast<double>(n);
  for (int round = 1; round <= cap; ++round) {
    exec.step();
    double error = 0.0;
    for (const Agent& agent : exec.agents()) {
      error = std::max(error, std::abs(agent.output() - truth));
    }
    if (error <= kEps) return round;
  }
  return -1;
}

}  // namespace

int main() {
  std::printf(
      "Degree-oblivious ablation on static rings (worst-case concentrated "
      "input, eps = %.0e)\n\n",
      kEps);
  std::printf("%4s | %12s %8s | %16s | %7s\n", "n", "Metropolis", "/(n^2)",
              "uniform (N = n)", "ratio");
  for (Vertex n : {4, 6, 8, 12, 16}) {
    const int metropolis = rounds_to_eps<MetropolisAgent>(
        n, [](Vertex v) { return MetropolisAgent(v == 0 ? 1.0 : 0.0); },
        CommModel::kOutdegreeAware, 2000000);
    const int uniform = rounds_to_eps<UniformWeightAgent>(
        n,
        [n](Vertex v) {
          return UniformWeightAgent(v == 0 ? 1.0 : 0.0,
                                    static_cast<std::uint32_t>(n));
        },
        CommModel::kSymmetricBroadcast, 2000000);
    const double n2 = static_cast<double>(n) * n;
    std::printf("%4d | %12d %8.2f | %16d | %6.1fx\n", n, metropolis,
                metropolis / n2, uniform,
                static_cast<double>(uniform) / metropolis);
  }

  std::printf(
      "\nA loose bound makes the oblivious step slower still — Metropolis "
      "does not care about N at all (8-ring):\n\n");
  std::printf("%14s | %10s %10s %10s %10s\n", "", "N=n", "N=2n", "N=4n",
              "N=8n");
  {
    const Vertex n = 8;
    const int metropolis = rounds_to_eps<MetropolisAgent>(
        n, [](Vertex v) { return MetropolisAgent(v == 0 ? 1.0 : 0.0); },
        CommModel::kOutdegreeAware, 2000000);
    std::printf("%14s |", "uniform");
    for (int multiplier : {1, 2, 4, 8}) {
      const int uniform = rounds_to_eps<UniformWeightAgent>(
          n,
          [n, multiplier](Vertex v) {
            return UniformWeightAgent(
                v == 0 ? 1.0 : 0.0,
                static_cast<std::uint32_t>(multiplier * n));
          },
          CommModel::kSymmetricBroadcast, 2000000);
      std::printf(" %10d", uniform);
    }
    std::printf("\n%14s | %10d %10s %10s %10s\n", "Metropolis", metropolis,
                "(same)", "(same)", "(same)");
  }
  std::printf(
      "\nKnowing your audience buys speed: same model class, same inputs, "
      "but the degree-aware weights converge several times faster, and a "
      "loose bound costs the oblivious algorithm linearly in N — the price "
      "of anonymity-without-audience-knowledge is time, not computability "
      "(given the bound N).\n");
  return 0;
}
