// Experiment F1 — Theorem 5.2: Push-Sum reaches ε-agreement on the quot-sum
// within O(n^{2D} · D · log(1/ε)) rounds in dynamic networks of dynamic
// diameter D.
//
// Two series:
//   (a) error vs round for several (n, schedule) pairs — geometric decay;
//   (b) rounds-to-ε vs log10(1/ε) — the log(1/ε) factor shows as a straight
//       line whose slope grows with n and D.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/pushsum.hpp"
#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

namespace {

struct Config {
  const char* name;
  DynamicGraphPtr schedule;
  Vertex n;
};

double worst_error(const Executor<PushSumAgent>& exec, double truth) {
  double error = 0.0;
  for (const PushSumAgent& agent : exec.agents()) {
    error = std::max(error, std::abs(agent.output() - truth));
  }
  return error;
}

Executor<PushSumAgent> make_run(const Config& config) {
  std::vector<PushSumAgent> agents;
  for (Vertex v = 0; v < config.n; ++v) {
    agents.emplace_back(v == 0 ? 1.0 : 0.0, 1.0);  // frequency of a singleton
  }
  return Executor<PushSumAgent>(config.schedule, std::move(agents),
                                CommModel::kOutdegreeAware);
}

}  // namespace

int main() {
  std::vector<Config> configs;
  for (Vertex n : {4, 8, 16}) {
    configs.push_back({"dynamic-random", std::make_shared<RandomStronglyConnectedSchedule>(n, 3, 7), n});
  }
  configs.push_back({"static-ring", std::make_shared<StaticSchedule>(
                                        bidirectional_ring(12)), 12});
  configs.push_back(
      {"token-ring", std::make_shared<TokenRingSchedule>(6), 6});

  std::printf("F1(a) — max_i |x_i(t) - quotsum| vs round\n");
  std::printf("%-16s %4s %4s |", "schedule", "n", "D");
  for (int checkpoint = 1; checkpoint <= 6; ++checkpoint) {
    std::printf(" t=%-7d", checkpoint * 50);
  }
  std::printf("\n");
  for (const Config& config : configs) {
    const int d = dynamic_diameter(*config.schedule, 10, 4 * config.n * config.n);
    std::printf("%-16s %4d %4d |", config.name, config.n, d);
    auto exec = make_run(config);
    const double truth = 1.0 / static_cast<double>(config.n);
    for (int checkpoint = 1; checkpoint <= 6; ++checkpoint) {
      exec.run(50);
      std::printf(" %-9.2e", worst_error(exec, truth));
    }
    std::printf("\n");
  }

  std::printf("\nF1(b) — rounds until max error <= eps (log(1/eps) scaling)\n");
  std::printf("%-16s %4s |", "schedule", "n");
  const double epsilons[] = {1e-2, 1e-4, 1e-6, 1e-8};
  for (double eps : epsilons) std::printf(" eps=%-6.0e", eps);
  std::printf("\n");
  for (const Config& config : configs) {
    std::printf("%-16s %4d |", config.name, config.n);
    auto exec = make_run(config);
    const double truth = 1.0 / static_cast<double>(config.n);
    int round = 0;
    for (double eps : epsilons) {
      while (worst_error(exec, truth) > eps && round < 20000) {
        exec.step();
        ++round;
      }
      std::printf(" %-10d", round);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: per-config, rounds-to-eps grows ~linearly in "
      "log(1/eps), with slope increasing in n and D — Theorem 5.2's "
      "O(n^2D D log(1/eps)) is a (loose) upper envelope.\n");
  return 0;
}
