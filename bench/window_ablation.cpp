// Ablation — the finite-state window of the distributed minimum-base
// algorithm (end of Section 3.2).
//
// DESIGN.md calls out the window size as the design parameter trading state
// for stabilization: the extraction needs every agent's depth-h view for
// h up to the refinement depth, gathered across D rounds, so windows below
// ~n + 2D must fail and windows above must succeed with bounded state.
// This bench sweeps the window on one network and reports whether the
// candidate is correct after a long horizon, plus the bounded view depth —
// locating the phase transition the analysis predicts.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/minbase_agent.hpp"
#include "dynamics/schedules.hpp"
#include "fibration/minimum_base.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

int main() {
  const Digraph g = bidirectional_ring(8);
  // One distinguished agent: the refinement must discover distance-to-leader
  // classes, which takes views as deep as the diameter — a hard instance.
  const std::vector<std::int64_t> inputs{9, 0, 0, 0, 0, 0, 0, 0};
  const int n = g.vertex_count();
  const int d = diameter(g);
  std::printf(
      "Window ablation — finite-state minimum base on an 8-ring "
      "(n = %d, D = %d, guarantee threshold n + 2D = %d)\n\n",
      n, d, n + 2 * d);
  std::printf("%8s | %9s %11s %9s\n", "window", "correct?", "view depth",
              "registry");

  for (int window : {2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 0}) {
    auto registry = std::make_shared<ViewRegistry>();
    auto codec = std::make_shared<LabelCodec>();
    std::vector<MinBaseAgent> agents;
    for (std::int64_t input : inputs) {
      agents.emplace_back(registry, codec, input,
                          CommModel::kSymmetricBroadcast, window);
    }
    Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(g),
                                std::move(agents),
                                CommModel::kSymmetricBroadcast);
    exec.run(4 * (n + 2 * d));

    std::vector<int> labels;
    for (std::int64_t v : inputs) {
      labels.push_back(codec->value_label(v));
    }
    const MinimumBase truth = minimum_base(g, labels);
    bool all_correct = true;
    for (const MinBaseAgent& agent : exec.agents()) {
      const ExtractedBase& candidate = agent.candidate();
      if (!candidate.plausible ||
          !find_isomorphism(candidate.base, candidate.values, truth.base,
                            truth.values)
               .has_value()) {
        all_correct = false;
        break;
      }
    }
    std::printf("%8s | %9s %11d %9zu\n",
                window == 0 ? "inf" : std::to_string(window).c_str(),
                all_correct ? "yes" : "no",
                registry->depth(exec.agent(0).view()), registry->size());
  }
  std::printf(
      "\nShape: a sharp phase transition — windows below the extraction "
      "horizon cannot hold every agent's stabilized view and fail; windows "
      "at or above it succeed with state bounded by the window, matching "
      "the finite-state claim of Section 3.2.\n");
  return 0;
}
