// Regenerates Table 2 of the paper: computable function classes in dynamic
// anonymous networks with a finite dynamic diameter.
//
// Measured like Table 1, but on dynamic schedules (certified finite dynamic
// diameter) and with the Section 5 algorithms: gossip, Push-Sum (outdegree
// awareness), Metropolis indicator averaging (symmetric communications).
// The symmetric column's no-help and leader cells run the history-tree
// mechanism of Di Luna & Viglietta (core/history_tree.hpp): exact
// computation with no bound on n and no outdegree awareness, as the paper's
// Table 2 credits to [25, 26].

#include <cstdio>
#include <string>

#include "core/census.hpp"
#include "core/computability.hpp"
#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"

using namespace anonet;

namespace {

DynamicGraphPtr make_schedule(CommModel model, Vertex n, std::uint64_t seed) {
  if (model == CommModel::kSymmetricBroadcast) {
    return std::make_shared<RandomSymmetricSchedule>(n, 3, seed);
  }
  return std::make_shared<RandomStronglyConnectedSchedule>(n, 3, seed);
}

struct CellResult {
  bool exact = false;
  bool approximate = false;
};

CellResult run_cell(CommModel model, Knowledge knowledge,
                    const SymmetricFunction& f) {
  CellResult cell{true, true};
  const std::vector<std::vector<std::int64_t>> input_sets{
      {1, 2, 1, 2, 1, 2}, {4, 4, 9, 9, 9, 4}, {0, 0, 0, 0, 5, 5}};
  std::uint64_t seed = 17;
  for (const auto& values : input_sets) {
    const auto n = static_cast<Vertex>(values.size());
    Attempt attempt;
    attempt.model = model;
    attempt.knowledge = knowledge;
    attempt.rounds = 400;
    attempt.tolerance = 1e-3;
    std::vector<std::int64_t> inputs = values;
    switch (knowledge) {
      case Knowledge::kNone:
        break;
      case Knowledge::kUpperBound:
        attempt.parameter = 2 * n;
        break;
      case Knowledge::kExactSize:
        attempt.parameter = n;
        break;
      case Knowledge::kLeaders:
        attempt.parameter = 1;
        inputs.clear();
        for (std::size_t i = 0; i < values.size(); ++i) {
          inputs.push_back(encode_leader_input(values[i], i == 0));
        }
        break;
    }
    const AttemptResult result =
        attempt_dynamic(make_schedule(model, n, seed++), inputs, f, attempt);
    cell.approximate = cell.approximate && result.success;
    cell.exact =
        cell.exact && result.success && result.stabilization_round >= 0;
  }
  return cell;
}

std::string cell_label(CommModel model, Knowledge knowledge) {
  const CellResult set_cell = run_cell(model, knowledge, max_function());
  const CellResult freq_cell = run_cell(model, knowledge, average_function());
  const CellResult multi_cell = run_cell(model, knowledge, sum_function());
  if (multi_cell.exact) return "multiset-based";
  if (freq_cell.exact) return "frequency-based";
  if (freq_cell.approximate) return "frequency-based*";
  if (set_cell.exact) return "set-based";
  return "(nothing)";
}

}  // namespace

int main() {
  std::printf(
      "Table 2 — computable functions in dynamic networks of n anonymous "
      "agents with finite dynamic diameter (measured)\n\n");
  const CommModel models[] = {CommModel::kSimpleBroadcast,
                              CommModel::kOutdegreeAware,
                              CommModel::kSymmetricBroadcast};
  const Knowledge rows[] = {Knowledge::kNone, Knowledge::kUpperBound,
                            Knowledge::kExactSize, Knowledge::kLeaders};
  // Paper's claims. '*' marks approximate-only / continuity-in-frequency;
  // the paper's no-help and leader symmetric cells cite Di Luna & Viglietta
  // for *exact* computation with an infinite-state algorithm we do not
  // reproduce (our measured cells show the paper's own Section 5 methods).
  const char* paper[4][3] = {
      {"set-based", "? (open in the paper)", "frequency-based [26]"},
      {"set-based", "frequency-based", "frequency-based"},
      {"set-based", "multiset-based", "multiset-based"},
      {"set-based", "? (open in the paper)", "multiset-based [25]"},
  };

  std::printf("%-26s", "");
  for (CommModel model : models) {
    std::printf("| %-34s", std::string(to_string(model)).c_str());
  }
  std::printf("\n");
  for (int i = 0; i < 3 * 36 + 10; ++i) std::printf("-");
  std::printf("\n");

  for (int row = 0; row < 4; ++row) {
    std::printf("%-26s", std::string(to_string(rows[row])).c_str());
    for (int col = 0; col < 3; ++col) {
      const std::string measured = cell_label(models[col], rows[row]);
      std::printf("| %-34s", measured.c_str());
    }
    std::printf("\n%-26s", "  (paper)");
    for (int col = 0; col < 3; ++col) {
      std::printf("| %-34s", paper[row][col]);
    }
    std::printf("\n");
  }
  std::printf(
      "\n'frequency-based*' = asymptotic (δ2) computation of functions "
      "continuous in frequency (Cor. 5.5);\nexact cells stabilized in finite "
      "time (δ0). The two '?' cells of the paper are open questions there;\n"
      "our measurements show what the Section 5 machinery achieves in them.\n");
  return 0;
}
