// Experiment F2 — Section 3.2 / 4.2: the distributed minimum-base algorithm
// stabilizes in linear time. The paper's refined extraction is guaranteed
// from round n + D; our self-stabilizing window extraction from n + 2D
// (see views/base_extraction.cpp). We measure the *actual* first round from
// which every agent's candidate is correct and stays correct, across graph
// families, against both bounds.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/minbase_agent.hpp"
#include "dynamics/schedules.hpp"
#include "fibration/minimum_base.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

namespace {

struct Case {
  const char* family;
  Digraph graph;
  std::vector<std::int64_t> inputs;
};

// First round from which every agent's candidate is (and remains, over the
// measured horizon) isomorphic to the true minimum base; -1 if never.
int measure_stabilization(const Case& c, CommModel model) {
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<MinBaseAgent> agents;
  for (std::int64_t input : c.inputs) {
    agents.emplace_back(registry, codec, input, model);
  }
  Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(c.graph),
                              std::move(agents), model);
  std::vector<int> labels;
  for (std::size_t v = 0; v < c.inputs.size(); ++v) {
    labels.push_back(
        model == CommModel::kOutdegreeAware
            ? codec->valued_degree_label(
                  c.inputs[v], c.graph.outdegree(static_cast<Vertex>(v)))
            : codec->value_label(c.inputs[v]));
  }
  const MinimumBase truth = minimum_base(c.graph, labels);

  const int n = c.graph.vertex_count();
  const int horizon = 2 * n + 4 * diameter(c.graph) + 6;
  int stable_since = -1;
  for (int round = 1; round <= horizon; ++round) {
    exec.step();
    bool all_correct = true;
    for (const MinBaseAgent& agent : exec.agents()) {
      const ExtractedBase& candidate = agent.candidate();
      if (!candidate.plausible ||
          !find_isomorphism(candidate.base, candidate.values, truth.base,
                            truth.values)
               .has_value()) {
        all_correct = false;
        break;
      }
    }
    if (!all_correct) {
      stable_since = -1;
    } else if (stable_since == -1) {
      stable_since = round;
    }
  }
  return stable_since;
}

}  // namespace

int main() {
  std::vector<Case> cases;
  for (Vertex n : {4, 6, 8, 10, 12}) {
    std::vector<std::int64_t> alternating;
    for (Vertex v = 0; v < n; ++v) alternating.push_back(v % 2);
    cases.push_back({"bidir-ring", bidirectional_ring(n), alternating});
  }
  for (Vertex n : {6, 9, 12}) {
    const LiftedGraph lift = random_lift(
        random_strongly_connected(3, 3, static_cast<std::uint64_t>(n)),
        std::vector<int>(3, n / 3), static_cast<std::uint64_t>(n) + 1);
    std::vector<std::int64_t> values;
    for (Vertex b : lift.projection) values.push_back(b == 0 ? 1 : 0);
    cases.push_back({"random-lift", lift.graph, values});
  }
  for (Vertex n : {5, 8, 11}) {
    std::vector<std::int64_t> values;
    for (Vertex v = 0; v < n; ++v) values.push_back(v % 3);
    cases.push_back({"random-sc",
                     random_strongly_connected(n, n, static_cast<std::uint64_t>(n) * 3),
                     values});
  }

  std::printf(
      "F2 — distributed minimum base: measured stabilization round vs the "
      "linear bounds\n\n");
  std::printf("%-12s %4s %4s %6s | %9s %8s %9s\n", "family", "n", "D",
              "|base|", "measured", "n+D", "n+2D");
  bool all_within = true;
  for (const Case& c : cases) {
    const int n = c.graph.vertex_count();
    const int d = diameter(c.graph);
    std::vector<int> labels;
    for (std::int64_t v : c.inputs) labels.push_back(static_cast<int>(v));
    const MinimumBase truth = minimum_base(c.graph, labels);
    const CommModel model = c.graph.is_symmetric()
                                ? CommModel::kSymmetricBroadcast
                                : CommModel::kOutdegreeAware;
    const int measured = measure_stabilization(c, model);
    const bool within = measured > 0 && measured <= n + 2 * d;
    all_within = all_within && within;
    std::printf("%-12s %4d %4d %6d | %9d %8d %9d %s\n", c.family, n, d,
                truth.base.vertex_count(), measured, n + d, n + 2 * d,
                within ? "" : "  <-- EXCEEDS BOUND");
  }
  std::printf(
      "\nShape: stabilization is linear in n + D everywhere, and within the "
      "implementation's n + 2D guarantee.\n%s\n",
      all_within ? "All cases within bound." : "BOUND VIOLATION — see above.");
  return all_within ? 0 : 1;
}
