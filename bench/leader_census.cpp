// Experiment F5 — Section 5.5 / Corollary 4.4: leaders unlock the multiset.
// Measures exact-sum stabilization with ℓ = 1, 2, 3 leaders, in both the
// static pipeline (minimum base + eq. (5)) and the dynamic one (leader
// Push-Sum), and shows the ℓ = 0 baseline failing.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/census.hpp"
#include "core/computability.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"

using namespace anonet;

namespace {

std::vector<std::int64_t> coded_inputs(const std::vector<std::int64_t>& values,
                                       int leaders) {
  std::vector<std::int64_t> inputs;
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(
        encode_leader_input(values[i], static_cast<int>(i) < leaders));
  }
  return inputs;
}

}  // namespace

int main() {
  const std::vector<std::int64_t> values{3, 1, 4, 1, 5, 9, 2, 6};
  const auto n = static_cast<Vertex>(values.size());
  std::printf(
      "F5 — multiset recovery with leaders (inputs sum to 31, n = %d)\n\n",
      n);
  std::printf("%8s | %28s | %28s\n", "leaders", "static (minbase + eq. 5)",
              "dynamic (leader Push-Sum)");

  const Digraph mesh = random_symmetric_connected(n, 5, 12);
  for (int leaders = 0; leaders <= 3; ++leaders) {
    Attempt attempt;
    attempt.rounds = 60;
    std::string static_report, dynamic_report;
    if (leaders == 0) {
      attempt.model = CommModel::kSymmetricBroadcast;
      attempt.knowledge = Knowledge::kNone;
      const auto blocked = attempt_static(mesh, values, sum_function(), attempt);
      static_report = blocked.success ? "computed (?!)" : "impossible (proved)";
      attempt.model = CommModel::kOutdegreeAware;
      attempt.rounds = 400;
      const auto blocked_dyn = attempt_dynamic(
          std::make_shared<RandomStronglyConnectedSchedule>(n, 3, 5), values,
          sum_function(), attempt);
      dynamic_report =
          blocked_dyn.success ? "computed (?!)" : "impossible (proved)";
    } else {
      const std::vector<std::int64_t> inputs = coded_inputs(values, leaders);
      attempt.model = CommModel::kSymmetricBroadcast;
      attempt.knowledge = Knowledge::kLeaders;
      attempt.parameter = leaders;
      const auto static_result =
          attempt_static(mesh, inputs, sum_function(), attempt);
      static_report = static_result.success
                          ? "exact from round " +
                                std::to_string(static_result.stabilization_round)
                          : "FAILED";
      attempt.model = CommModel::kOutdegreeAware;
      attempt.rounds = 800;
      const auto dynamic_result = attempt_dynamic(
          std::make_shared<RandomStronglyConnectedSchedule>(n, 3, 5), inputs,
          sum_function(), attempt);
      dynamic_report =
          dynamic_result.success
              ? "exact from round " +
                    std::to_string(dynamic_result.stabilization_round)
              : "FAILED";
    }
    std::printf("%8d | %28s | %28s\n", leaders, static_report.c_str(),
                dynamic_report.c_str());
  }
  std::printf(
      "\nShape: zero leaders — provably impossible; any ℓ >= 1 — exact "
      "multiset, hence the sum, in finite time (the ℓ leaders' fibres pin "
      "the scale factor of eq. (2)).\n");
  return 0;
}
